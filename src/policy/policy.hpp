// Scheduling policies.
//
// A Policy replays an evaluation trace under its own rules and reports
// a sim::PolicyOutcome. Policies must be online in spirit: decisions at
// time t may use only the training data they were constructed with and
// the events at or before t — except OraclePolicy, which is explicitly
// the clairvoyant lower bound (§VI-A "off-line analysis to derive the
// optimal results").
//
// Implementations:
//   BaselinePolicy  — stock behaviour, everything at its original time
//   DelayPolicy     — fixed-interval delay-and-aggregate ([10], [2])
//   BatchPolicy     — aggregate up to N screen-off activities ([2])
//   OraclePolicy    — clairvoyant packing into real screen sessions
//   NetMasterPolicy — the paper's system (prediction + knapsack +
//                     real-time adjustment)
#pragma once

#include <memory>
#include <string>

#include "engine/trace_index.hpp"
#include "sim/outcome.hpp"
#include "trace/trace.hpp"

namespace netmaster::policy {

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Replays the indexed eval trace under this policy. The returned
  /// outcome executes every activity of the trace exactly once within
  /// its horizon. The index is shared, read-only state: fleet-scale
  /// callers build one TraceIndex per user and replay every policy
  /// against it.
  virtual sim::PolicyOutcome run(const engine::TraceIndex& eval) const = 0;

  /// One-shot convenience: indexes `eval` and replays it. Concrete
  /// policies re-expose this overload with `using Policy::run;`.
  sim::PolicyOutcome run(const UserTrace& eval) const;
};

/// True when the activity is fair game for deferral: a deferrable
/// (background) transfer that starts while the screen is off. This is
/// the class the paper's optimizations target.
bool is_deferrable_screen_off(const UserTrace& trace,
                              const NetworkActivity& activity);

/// Clamps a release time so that [release, release+duration) fits into
/// [0, horizon) and never precedes `not_before`.
TimeMs clamp_release(TimeMs release, DurationMs duration, TimeMs horizon,
                     TimeMs not_before);

/// How long a radio-switch-driving policy (NetMaster, oracle) keeps the
/// radio up after a transfer before forcing dormancy — the release
/// signalling delay of the §IV-C.2 real-time adjustment ("turning off
/// the radio in the user active slots timely").
inline constexpr DurationMs kDormancyGraceMs = 3000;

/// Screen-off trickle transfers run on the slow shared channel (FACH)
/// under stock Android — that is why Fig. 1b's screen-off rates sit
/// below 1 kB/s. When a policy defers such a transfer and releases it
/// in a batch, the same bytes move over the dedicated channel (DCH) at
/// roughly the screen-on rate — this factor models that speedup and is
/// granted to *every* deferring policy (delay, batch, delay&batch,
/// oracle, NetMaster) alike.
inline constexpr double kDchSpeedup = 6.0;

/// Executed duration of a deferred screen-off transfer (floor 500 ms).
DurationMs deferred_duration(DurationMs original);

}  // namespace netmaster::policy
