#include "policy/policy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace netmaster::policy {

sim::PolicyOutcome Policy::run(const UserTrace& eval) const {
  return run(engine::TraceIndex(eval));
}

bool is_deferrable_screen_off(const UserTrace& trace,
                              const NetworkActivity& activity) {
  return activity.deferrable && !trace.screen_on_at(activity.start);
}

TimeMs clamp_release(TimeMs release, DurationMs duration, TimeMs horizon,
                     TimeMs not_before) {
  NM_REQUIRE(duration >= 0, "duration must be non-negative");
  NM_REQUIRE(not_before >= 0 && not_before + duration <= horizon,
             "the original schedule must fit the horizon");
  return std::clamp(release, not_before, horizon - duration);
}

DurationMs deferred_duration(DurationMs original) {
  NM_REQUIRE(original >= 0, "duration must be non-negative");
  const auto sped = static_cast<DurationMs>(
      static_cast<double>(original) / kDchSpeedup);
  return std::max<DurationMs>(sped, 500);
}

}  // namespace netmaster::policy
