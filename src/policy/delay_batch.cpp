#include "policy/delay_batch.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/error.hpp"

namespace netmaster::policy {

DelayBatchPolicy::DelayBatchPolicy(DurationMs interval_ms)
    : interval_ms_(interval_ms) {
  NM_REQUIRE(interval_ms > 0, "delay interval must be positive");
}

std::string DelayBatchPolicy::name() const {
  std::ostringstream os;
  os << "delay&batch(" << interval_ms_ / kMsPerSecond << "s)";
  return os.str();
}

sim::PolicyOutcome DelayBatchPolicy::run(
    const engine::TraceIndex& eval) const {
  sim::PolicyOutcome outcome;
  outcome.policy_name = name();
  const TimeMs horizon = eval.horizon();
  const mem::ActivityColumns& activities = eval.activities();
  const mem::SessionColumns& sessions = eval.sessions();

  struct Pending {
    std::size_t index;
    TimeMs arrival;
    DurationMs duration;
  };
  std::vector<Pending> queue;

  auto flush = [&](TimeMs at) {
    for (const Pending& p : queue) {
      const DurationMs dur = deferred_duration(p.duration);
      const TimeMs release = clamp_release(at, dur, horizon, p.arrival);
      if (release > p.arrival) {
        outcome.transfers.push_back({p.index, release, dur});
        outcome.blocked.add(p.arrival, release);
        outcome.deferral_latency_s.push_back(
            to_seconds(release - p.arrival));
      } else {
        outcome.transfers.push_back({p.index, p.arrival, p.duration});
      }
    }
    queue.clear();
  };

  // Deadline of the oldest queued entry.
  auto deadline = [&]() { return queue.front().arrival + interval_ms_; };

  auto session = sessions.begin();
  for (std::size_t i = 0; i < activities.size(); ++i) {
    const NetworkActivity act = activities[i];
    // Fire any timer/screen trigger preceding this activity.
    while (!queue.empty()) {
      const TimeMs timer = deadline();
      const TimeMs screen =
          session != sessions.end() ? session->begin : horizon;
      const TimeMs trigger = std::min(timer, screen);
      if (trigger > act.start) break;
      flush(trigger);
      if (screen == trigger && session != sessions.end()) ++session;
    }
    // Keep the session cursor moving even with an empty queue.
    while (session != sessions.end() && session->begin <= act.start) {
      ++session;
    }
    if (!eval.is_deferrable_screen_off(i)) {
      outcome.transfers.push_back({i, act.start, act.duration});
      continue;
    }
    queue.push_back({i, act.start, act.duration});
  }
  while (!queue.empty()) {
    const TimeMs timer = deadline();
    const TimeMs screen =
        session != sessions.end() ? session->begin : horizon;
    flush(std::min({timer, screen, horizon}));
    if (session != sessions.end() && screen <= timer) ++session;
  }
  return outcome;
}

}  // namespace netmaster::policy
