#include "policy/baseline.hpp"

namespace netmaster::policy {

sim::PolicyOutcome BaselinePolicy::run(
    const engine::TraceIndex& eval) const {
  sim::PolicyOutcome outcome;
  outcome.policy_name = name();
  const mem::ActivityColumns& activities = eval.activities();
  outcome.transfers.reserve(activities.size());
  for (std::size_t i = 0; i < activities.size(); ++i) {
    outcome.transfers.push_back(
        {i, activities.start_at(i), activities.duration_at(i)});
  }
  return outcome;
}

}  // namespace netmaster::policy
