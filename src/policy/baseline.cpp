#include "policy/baseline.hpp"

namespace netmaster::policy {

sim::PolicyOutcome BaselinePolicy::run(const UserTrace& eval) const {
  sim::PolicyOutcome outcome;
  outcome.policy_name = name();
  outcome.transfers.reserve(eval.activities.size());
  for (std::size_t i = 0; i < eval.activities.size(); ++i) {
    const NetworkActivity& act = eval.activities[i];
    outcome.transfers.push_back({i, act.start, act.duration});
  }
  return outcome;
}

}  // namespace netmaster::policy
