#include "policy/baseline.hpp"

namespace netmaster::policy {

sim::PolicyOutcome BaselinePolicy::run(
    const engine::TraceIndex& eval) const {
  sim::PolicyOutcome outcome;
  outcome.policy_name = name();
  const std::vector<NetworkActivity>& activities = eval.activities();
  outcome.transfers.reserve(activities.size());
  for (std::size_t i = 0; i < activities.size(); ++i) {
    const NetworkActivity& act = activities[i];
    outcome.transfers.push_back({i, act.start, act.duration});
  }
  return outcome;
}

}  // namespace netmaster::policy
