// Fixed-interval delay-and-aggregate (the related work's method, [10]
// uses 180 s windows and [2] 100 s). Screen-off deferrable activities
// arriving in window [k·d, (k+1)·d) are all released together at the
// window boundary (k+1)·d, during which the radio is held off. The
// §VI-C sweep varies d from 1 s to 600 s (Fig. 8).
#pragma once

#include "common/time.hpp"
#include "policy/policy.hpp"

namespace netmaster::policy {

class DelayPolicy final : public Policy {
 public:
  explicit DelayPolicy(DurationMs interval_ms);

  using Policy::run;

  std::string name() const override;
  sim::PolicyOutcome run(const engine::TraceIndex& eval) const override;

  DurationMs interval_ms() const { return interval_ms_; }

 private:
  DurationMs interval_ms_;
};

}  // namespace netmaster::policy
