#include "policy/delay.hpp"

#include <sstream>

#include "common/error.hpp"

namespace netmaster::policy {

DelayPolicy::DelayPolicy(DurationMs interval_ms)
    : interval_ms_(interval_ms) {
  NM_REQUIRE(interval_ms > 0, "delay interval must be positive");
}

std::string DelayPolicy::name() const {
  std::ostringstream os;
  os << "delay(" << interval_ms_ / kMsPerSecond << "s)";
  return os.str();
}

sim::PolicyOutcome DelayPolicy::run(const engine::TraceIndex& eval) const {
  sim::PolicyOutcome outcome;
  outcome.policy_name = name();
  const TimeMs horizon = eval.horizon();
  const mem::ActivityColumns& activities = eval.activities();

  for (std::size_t i = 0; i < activities.size(); ++i) {
    const NetworkActivity act = activities[i];
    if (!eval.is_deferrable_screen_off(i)) {
      outcome.transfers.push_back({i, act.start, act.duration});
      continue;
    }
    // Quantize to the end of the containing delay window.
    const TimeMs window_end =
        (act.start / interval_ms_ + 1) * interval_ms_;
    const DurationMs dur = deferred_duration(act.duration);
    const TimeMs release = clamp_release(window_end, dur, horizon, act.start);
    if (release > act.start) {
      outcome.transfers.push_back({i, release, dur});
      outcome.blocked.add(act.start, release);
      outcome.deferral_latency_s.push_back(to_seconds(release - act.start));
    } else {
      outcome.transfers.push_back({i, act.start, act.duration});
    }
  }
  return outcome;
}

}  // namespace netmaster::policy
