#include "policy/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/radio_timeline.hpp"

namespace netmaster::policy {

OraclePolicy::OraclePolicy(sched::ProfitConfig profit)
    : profit_(profit) {}

sim::PolicyOutcome OraclePolicy::run(const engine::TraceIndex& eval) const {
  sim::PolicyOutcome outcome;
  outcome.policy_name = name();
  const TimeMs horizon = eval.horizon();
  const mem::SessionColumns& sessions = eval.sessions();
  const mem::ActivityColumns& activities = eval.activities();

  // Per-session residual capacity (Eq. 5 over the real sessions).
  std::vector<std::int64_t> residual;
  residual.reserve(sessions.size());
  for (const ScreenSession s : sessions) {
    residual.push_back(
        sched::slot_capacity_bytes(s.interval(), profit_));
  }

  for (std::size_t i = 0; i < activities.size(); ++i) {
    const NetworkActivity act = activities[i];
    if (!eval.is_deferrable_screen_off(i) || sessions.empty()) {
      outcome.transfers.push_back({i, act.start, act.duration});
      continue;
    }

    // Nearest sessions before/after the arrival.
    const std::size_t after = eval.first_session_at_or_after(act.start);
    const std::ptrdiff_t next_idx =
        after == sessions.size() ? -1 : static_cast<std::ptrdiff_t>(after);
    const std::ptrdiff_t prev_idx =
        after == 0 ? -1 : static_cast<std::ptrdiff_t>(after) - 1;

    // Prefer the session with spare capacity whose anchor is closer.
    std::ptrdiff_t target = -1;
    const std::int64_t bytes = act.total_bytes();
    auto distance = [&](std::ptrdiff_t idx) -> TimeMs {
      const ScreenSession s = sessions[static_cast<std::size_t>(idx)];
      return idx == prev_idx ? act.start - s.end : s.begin - act.start;
    };
    for (std::ptrdiff_t idx : {prev_idx, next_idx}) {
      if (idx < 0) continue;
      if (residual[static_cast<std::size_t>(idx)] < bytes) continue;
      if (target < 0 || distance(idx) < distance(target)) target = idx;
    }
    if (target < 0) {
      // No adjacent capacity: the transfer runs where it was. (With
      // realistic bandwidths this branch is cold; it keeps the oracle
      // honest under tiny Eq. 5 capacities.)
      outcome.transfers.push_back({i, act.start, act.duration});
      continue;
    }

    const ScreenSession s = sessions[static_cast<std::size_t>(target)];
    residual[static_cast<std::size_t>(target)] -= bytes;
    // Place inside the session (at DCH speed): deferred activities at
    // the session start, prefetched ones ending at the session end.
    const DurationMs dur = deferred_duration(act.duration);
    TimeMs release = target == prev_idx
                         ? std::max(s.begin, s.end - dur)
                         : s.begin;
    release = std::clamp<TimeMs>(release, 0, horizon - dur);
    outcome.transfers.push_back({i, release, dur});
    outcome.deferral_latency_s.push_back(
        to_seconds(std::max<TimeMs>(release - act.start, 0)));
  }

  // The oracle drives the data switch perfectly: after each transfer
  // the radio stays up only for a short dormancy grace (it cannot cut
  // instantly — release signalling takes a moment), then drops to IDLE.
  engine::RadioTimeline timeline(horizon);
  timeline.allow_transfers(outcome.transfers, kDormancyGraceMs);
  outcome.radio_allowed = std::move(timeline).build();
  return outcome;
}

}  // namespace netmaster::policy
