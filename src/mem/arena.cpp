#include "mem/arena.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace netmaster::mem {

namespace {

/// Cumulative bytes reserved by all arenas — the fleet's memory
/// trajectory, exported with every bench JSON.
obs::Counter& arena_bytes_counter() {
  static obs::Counter& c = obs::Registry::global().counter("mem.arena.bytes");
  return c;
}

obs::Counter& arena_chunks_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("mem.arena.chunks");
  return c;
}

}  // namespace

Arena::Arena(std::size_t chunk_bytes) : chunk_bytes_(chunk_bytes) {
  NM_REQUIRE(chunk_bytes > 0, "arena chunk size must be positive");
}

Arena::~Arena() { ++generation_; }

Arena::Arena(Arena&& other) noexcept
    : chunks_(std::move(other.chunks_)),
      chunk_bytes_(other.chunk_bytes_),
      used_(other.used_),
      reserved_(other.reserved_),
      generation_(other.generation_) {
  other.chunks_.clear();
  other.used_ = 0;
  other.reserved_ = 0;
  ++other.generation_;
}

Arena& Arena::operator=(Arena&& other) noexcept {
  if (this != &other) {
    chunks_ = std::move(other.chunks_);
    chunk_bytes_ = other.chunk_bytes_;
    used_ = other.used_;
    reserved_ = other.reserved_;
    ++generation_;
    other.chunks_.clear();
    other.used_ = 0;
    other.reserved_ = 0;
    ++other.generation_;
  }
  return *this;
}

Arena::Chunk& Arena::grow(std::size_t min_bytes) {
  const std::size_t size = std::max(min_bytes, chunk_bytes_);
  Chunk chunk;
  chunk.data = std::make_unique<std::byte[]>(size);
  chunk.size = size;
  reserved_ += size;
  arena_bytes_counter().add(size);
  arena_chunks_counter().add(1);
  chunks_.push_back(std::move(chunk));
  return chunks_.back();
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  NM_REQUIRE(align != 0 && (align & (align - 1)) == 0,
             "arena alignment must be a power of two");
  if (bytes == 0) bytes = 1;  // distinct non-null result, keeps spans sane

  Chunk* chunk = chunks_.empty() ? nullptr : &chunks_.back();
  std::size_t offset = 0;
  if (chunk != nullptr) {
    offset = (chunk->used + align - 1) & ~(align - 1);
    if (offset + bytes > chunk->size) chunk = nullptr;
  }
  if (chunk == nullptr) {
    // Fresh chunks come from make_unique and are maximally aligned for
    // fundamental types; `bytes + align` leaves room for repositioning
    // should a caller ever demand an extended alignment.
    chunk = &grow(bytes + align);
    offset = 0;
    void* base = chunk->data.get();
    const auto addr = reinterpret_cast<std::uintptr_t>(base);
    offset = ((addr + align - 1) & ~(std::uintptr_t{align} - 1)) - addr;
  }
  void* out = chunk->data.get() + offset;
  chunk->used = offset + bytes;
  used_ += bytes;
  return out;
}

void Arena::reset() {
  chunks_.clear();
  used_ = 0;
  reserved_ = 0;
  ++generation_;
}

LifetimeHandle Lifetime::immortal() {
  static const std::shared_ptr<std::atomic<bool>> forever =
      std::make_shared<std::atomic<bool>>(true);
  return Handle(forever);
}

}  // namespace netmaster::mem
