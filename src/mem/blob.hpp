// UserBlob — the compact, evictable serialized form of a user's traces.
//
// One blob is a flat, versioned, CRC-guarded byte image of one or more
// UserTraces in columnar order: a fixed header, then per trace a
// section header plus 8-byte-aligned field arrays (the on-disk twin of
// mem::TraceColumns). Every integer field is stored exactly, so
// decode(encode(t)) == t bit for bit — the property that lets the
// fleet spill cold users to disk and rehydrate them without perturbing
// a single scheduled transfer. Traces are stored as-is: a blob does
// not validate() its payload, so even invariant-violating edge traces
// survive the round trip (the consumers that care re-validate).
//
// The layout is mmap-friendly: all array offsets are 8-aligned, so
// read_file() maps the file and decodes straight out of the mapping
// (falling back to a buffered read where mmap is unavailable).
// Corruption — truncation, bit flips, bad magic/version/CRC, counts
// that overrun the payload — is rejected with BlobError, never UB.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "trace/trace.hpp"

namespace netmaster::mem {

/// Raised on any malformed or corrupted blob image.
class BlobError : public Error {
 public:
  using Error::Error;
};

/// Current blob format version (bump on any layout change).
inline constexpr std::uint32_t kBlobVersion = 1;

class UserBlob {
 public:
  /// Serializes the traces into one flat blob image.
  static std::vector<std::byte> encode(std::span<const UserTrace> traces);

  /// Parses a blob image back into traces. Throws BlobError on any
  /// corruption; never reads outside `bytes`.
  static std::vector<UserTrace> decode(std::span<const std::byte> bytes);

  /// Writes encode(traces) to `path` (atomically via a temp file +
  /// rename so readers never observe a half-written blob). Throws
  /// netmaster::Error on I/O failure.
  static void write_file(const std::string& path,
                         std::span<const UserTrace> traces);

  /// Reads and decodes a blob file, via mmap when the platform has it.
  static std::vector<UserTrace> read_file(const std::string& path);
};

/// CRC-32 (IEEE 802.3, reflected) of a byte range — the blob payload
/// checksum, exposed for tests that craft corrupted images.
std::uint32_t crc32(std::span<const std::byte> bytes);

/// Approximate heap footprint of an AoS trace: vector capacities plus
/// string storage. This is the "before" scalar of the memory refactor
/// and the unit the UserStore budgets its cache cap in.
std::size_t trace_footprint_bytes(const UserTrace& trace);

}  // namespace netmaster::mem
