// Per-user bump arena and lifetime tokens — the memory substrate of the
// fleet (ROADMAP item 2).
//
// A fleet slot's whole derived working set (SoA trace columns, index
// classification bits, mining buckets) lives in ONE Arena: a chunked
// bump allocator that hands out aligned slices of a few large blocks
// instead of one malloc per vector. That turns a per-user constellation
// of node-heavy heap objects into a handful of contiguous allocations —
// cheap to build, cache-friendly to replay, and freed wholesale when
// the user leaves the fleet.
//
// Lifetime rules (see DESIGN.md "Memory architecture"):
//   - An Arena is single-owner and NOT thread-safe: exactly one
//     parallel_for worker builds into a given arena (the fleet builds
//     one arena per user inside the per-user preparation task). After
//     preparation the arena is immutable and may be read by any number
//     of workers concurrently.
//   - Arena memory holds trivially-copyable/destructible data only; no
//     destructors run on reset().
//   - reset() and destruction bump the arena's generation, invalidating
//     every span handed out before — consumers that outlive the arena
//     hold a Lifetime handle (below) and are caught, not corrupted.
//
// Lifetime / LifetimeHandle implement the generation check the trace
// index uses to replace its old raw borrowed reference: the owner of a
// borrowed object keeps a Lifetime alongside it; borrowers capture a
// handle and test `alive()` before dereferencing. Destroying, moving
// from, or explicitly retiring the Lifetime flips every outstanding
// handle to dead.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace netmaster::mem {

/// Chunked bump allocator. Allocations are aligned, never individually
/// freed, and remain valid until reset() or destruction.
class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(Arena&&) noexcept;
  Arena& operator=(Arena&&) noexcept;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned allocation. `align` must be a power of two. Requests
  /// larger than the chunk size get a dedicated chunk.
  void* allocate(std::size_t bytes, std::size_t align);

  /// Allocates an uninitialised array of `n` Ts. T must be trivially
  /// copyable and destructible (arena memory is released wholesale).
  template <typename T>
  std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena arrays must be trivial — no destructors run");
    if (n == 0) return {};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    return {p, n};
  }

  /// Allocates and zero-fills an array of `n` Ts.
  template <typename T>
  std::span<T> alloc_zeroed(std::size_t n) {
    std::span<T> out = alloc_array<T>(n);
    for (T& v : out) v = T{};
    return out;
  }

  /// Copies `src` into the arena and returns the immutable view.
  template <typename T>
  std::span<const T> copy_array(std::span<const T> src) {
    std::span<T> out = alloc_array<T>(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) out[i] = src[i];
    return out;
  }

  /// Bytes handed out to callers (after alignment padding).
  std::size_t bytes_used() const { return used_; }
  /// Bytes reserved from the system (>= bytes_used()).
  std::size_t bytes_reserved() const { return reserved_; }
  /// Number of system allocations backing the arena.
  std::size_t chunk_count() const { return chunks_.size(); }

  /// Frees every chunk and bumps the generation: all spans handed out
  /// so far are invalid from here on.
  void reset();

  /// Monotonic counter bumped by reset() (and move-from). A consumer
  /// that snapshots generation() can later detect a recycled arena.
  std::uint64_t generation() const { return generation_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Chunk& grow(std::size_t min_bytes);

  std::vector<Chunk> chunks_;
  std::size_t chunk_bytes_;
  std::size_t used_ = 0;
  std::size_t reserved_ = 0;
  std::uint64_t generation_ = 0;
};

/// Owner-side lifetime token for a borrowed object (a UserTrace slot,
/// an arena). Destroying, moving from, or retire()-ing the token kills
/// every handle taken from it.
class Lifetime {
 public:
  Lifetime() : state_(std::make_shared<std::atomic<bool>>(true)) {}
  ~Lifetime() { retire(); }

  Lifetime(Lifetime&& other) noexcept : state_(std::move(other.state_)) {
    other.state_ = nullptr;  // moved-from owner guards nothing
  }
  Lifetime& operator=(Lifetime&& other) noexcept {
    if (this != &other) {
      retire();
      state_ = std::move(other.state_);
      other.state_ = nullptr;
    }
    return *this;
  }
  Lifetime(const Lifetime&) = delete;
  Lifetime& operator=(const Lifetime&) = delete;

  /// Marks the guarded object dead (idempotent). Called on eviction.
  void retire() {
    if (state_) state_->store(false, std::memory_order_release);
  }

  bool alive() const {
    return state_ && state_->load(std::memory_order_acquire);
  }

  class Handle {
   public:
    /// Default handle reports dead — a borrower must be given one.
    Handle() = default;

    /// True while the owning Lifetime is live and un-retired.
    bool alive() const {
      return state_ && state_->load(std::memory_order_acquire);
    }

   private:
    friend class Lifetime;
    explicit Handle(std::shared_ptr<std::atomic<bool>> state)
        : state_(std::move(state)) {}
    std::shared_ptr<std::atomic<bool>> state_;
  };

  Handle handle() const { return Handle(state_); }

  /// A handle that is permanently alive — for borrows whose owner
  /// outlives the borrower by construction (stack-local index builds).
  static Handle immortal();

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

using LifetimeHandle = Lifetime::Handle;

/// Immutable bit set over arena words — the compact form of the old
/// per-index `std::vector<bool>` classification flags.
class BitSpan {
 public:
  BitSpan() = default;

  /// Builds a zeroed bit set of `n` bits in `arena`. Bits are set
  /// through the returned mutable word span before freezing.
  static std::pair<BitSpan, std::span<std::uint64_t>> build(
      std::size_t n, Arena& arena) {
    std::span<std::uint64_t> words =
        arena.alloc_zeroed<std::uint64_t>((n + 63) / 64);
    BitSpan bits;
    bits.words_ = words;
    bits.size_ = n;
    return {bits, words};
  }

  static void set(std::span<std::uint64_t> words, std::size_t i) {
    words[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  std::size_t size() const { return size_; }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t size_ = 0;
};

}  // namespace netmaster::mem
