#include "mem/blob.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#define NM_BLOB_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace netmaster::mem {

namespace {

constexpr std::uint32_t kBlobMagic = 0x42554D4E;     // "NMUB"
constexpr std::uint32_t kSectionMagic = 0x52544D4E;  // "NMTR"
constexpr std::size_t kHeaderBytes = 24;
constexpr std::uint8_t kFlagUserInitiated = 1;
constexpr std::uint8_t kFlagDeferrable = 2;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

/// Little-endian append cursor keeping every array 8-byte aligned.
class Writer {
 public:
  explicit Writer(std::vector<std::byte>& out) : out_(out) {}

  template <typename T>
  void put(T v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_.size();
    out_.resize(at + sizeof(T));
    std::memcpy(out_.data() + at, &v, sizeof(T));
  }

  void align8() {
    while (out_.size() % 8 != 0) out_.push_back(std::byte{0});
  }

  template <typename T>
  void put_array(const T* data, std::size_t n) {
    align8();
    const std::size_t at = out_.size();
    out_.resize(at + n * sizeof(T));
    if (n > 0) std::memcpy(out_.data() + at, data, n * sizeof(T));
  }

 private:
  std::vector<std::byte>& out_;
};

/// Bounds-checked little-endian read cursor. Every take throws
/// BlobError on overrun instead of reading past the image.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T get() {
    T v;
    // memcpy tolerates any alignment; only get_array's in-place
    // reinterpret views need the real thing.
    std::memcpy(&v, take(sizeof(T), 1), sizeof(T));
    return v;
  }

  template <typename T>
  const T* get_array(std::size_t n) {
    align8();
    // Overflow-safe: bound the element count before multiplying.
    NM_BLOB_CHECK(n <= remaining() / sizeof(T),
                  "array overruns the blob payload");
    return reinterpret_cast<const T*>(take(n * sizeof(T), alignof(T)));
  }

  void align8() {
    const std::size_t misalign = at_ % 8;
    if (misalign != 0) take(8 - misalign, 1);
  }

  std::size_t remaining() const { return bytes_.size() - at_; }
  bool done() const { return at_ == bytes_.size(); }

 private:
  const std::byte* take(std::size_t n, std::size_t align) {
    NM_BLOB_CHECK(n <= remaining(), "blob truncated");
    const std::byte* p = bytes_.data() + at_;
    NM_BLOB_CHECK(reinterpret_cast<std::uintptr_t>(p) % align == 0,
                  "blob field misaligned");
    at_ += n;
    return p;
  }

  static void NM_BLOB_CHECK(bool ok, const char* what) {
    if (!ok) throw BlobError(std::string("blob: ") + what);
  }

  std::span<const std::byte> bytes_;
  std::size_t at_ = 0;
};

[[noreturn]] void fail(const std::string& what) {
  throw BlobError("blob: " + what);
}

void encode_trace(Writer& w, const UserTrace& trace) {
  w.align8();
  w.put<std::uint32_t>(kSectionMagic);
  w.put<std::int32_t>(trace.user);
  w.put<std::int32_t>(trace.num_days);
  w.put<std::uint32_t>(static_cast<std::uint32_t>(trace.app_names.size()));
  w.put<std::uint64_t>(trace.sessions.size());
  w.put<std::uint64_t>(trace.usages.size());
  w.put<std::uint64_t>(trace.activities.size());
  std::uint64_t names_bytes = 0;
  for (const std::string& name : trace.app_names) {
    names_bytes += name.size();
  }
  w.put<std::uint64_t>(names_bytes);

  std::vector<std::uint32_t> offsets;
  offsets.reserve(trace.app_names.size() + 1);
  std::vector<char> chars;
  chars.reserve(static_cast<std::size_t>(names_bytes));
  for (const std::string& name : trace.app_names) {
    offsets.push_back(static_cast<std::uint32_t>(chars.size()));
    chars.insert(chars.end(), name.begin(), name.end());
  }
  offsets.push_back(static_cast<std::uint32_t>(chars.size()));
  w.put_array(offsets.data(), offsets.size());
  w.put_array(chars.data(), chars.size());

  const std::size_t ns = trace.sessions.size();
  const std::size_t nu = trace.usages.size();
  const std::size_t na = trace.activities.size();
  std::vector<std::int64_t> col64(std::max({ns, nu, na}));
  std::vector<std::int32_t> col32(std::max(nu, na));
  std::vector<std::uint8_t> flags(na);

  auto put64 = [&](auto&& field, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) col64[i] = field(i);
    w.put_array(col64.data(), n);
  };
  auto put32 = [&](auto&& field, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) col32[i] = field(i);
    w.put_array(col32.data(), n);
  };

  put64([&](std::size_t i) { return trace.sessions[i].begin; }, ns);
  put64([&](std::size_t i) { return trace.sessions[i].end; }, ns);

  put32([&](std::size_t i) { return trace.usages[i].app; }, nu);
  put64([&](std::size_t i) { return trace.usages[i].time; }, nu);
  put64([&](std::size_t i) { return trace.usages[i].duration; }, nu);

  put32([&](std::size_t i) { return trace.activities[i].app; }, na);
  put64([&](std::size_t i) { return trace.activities[i].start; }, na);
  put64([&](std::size_t i) { return trace.activities[i].duration; }, na);
  put64([&](std::size_t i) { return trace.activities[i].bytes_down; }, na);
  put64([&](std::size_t i) { return trace.activities[i].bytes_up; }, na);
  for (std::size_t i = 0; i < na; ++i) {
    const NetworkActivity& a = trace.activities[i];
    flags[i] = (a.user_initiated ? kFlagUserInitiated : 0) |
               (a.deferrable ? kFlagDeferrable : 0);
  }
  w.put_array(flags.data(), na);
}

UserTrace decode_trace(Reader& r) {
  r.align8();
  if (r.get<std::uint32_t>() != kSectionMagic) {
    fail("bad trace section magic");
  }
  UserTrace trace;
  trace.user = r.get<std::int32_t>();
  trace.num_days = r.get<std::int32_t>();
  const auto num_apps = r.get<std::uint32_t>();
  const auto ns = r.get<std::uint64_t>();
  const auto nu = r.get<std::uint64_t>();
  const auto na = r.get<std::uint64_t>();
  const auto names_bytes = r.get<std::uint64_t>();

  const std::uint32_t* offsets =
      r.get_array<std::uint32_t>(std::size_t{num_apps} + 1);
  const char* chars =
      r.get_array<char>(static_cast<std::size_t>(names_bytes));
  if (offsets[0] != 0 || offsets[num_apps] != names_bytes) {
    fail("app name offsets do not cover the char blob");
  }
  trace.app_names.reserve(num_apps);
  for (std::uint32_t i = 0; i < num_apps; ++i) {
    if (offsets[i] > offsets[i + 1]) fail("app name offsets not sorted");
    trace.app_names.emplace_back(chars + offsets[i],
                                 offsets[i + 1] - offsets[i]);
  }

  const auto n_sessions = static_cast<std::size_t>(ns);
  const auto n_usages = static_cast<std::size_t>(nu);
  const auto n_acts = static_cast<std::size_t>(na);

  const std::int64_t* sess_begin = r.get_array<std::int64_t>(n_sessions);
  const std::int64_t* sess_end = r.get_array<std::int64_t>(n_sessions);
  trace.sessions.resize(n_sessions);
  for (std::size_t i = 0; i < n_sessions; ++i) {
    trace.sessions[i] = {sess_begin[i], sess_end[i]};
  }

  const std::int32_t* usage_app = r.get_array<std::int32_t>(n_usages);
  const std::int64_t* usage_time = r.get_array<std::int64_t>(n_usages);
  const std::int64_t* usage_dur = r.get_array<std::int64_t>(n_usages);
  trace.usages.resize(n_usages);
  for (std::size_t i = 0; i < n_usages; ++i) {
    trace.usages[i] = {usage_app[i], usage_time[i], usage_dur[i]};
  }

  const std::int32_t* act_app = r.get_array<std::int32_t>(n_acts);
  const std::int64_t* act_start = r.get_array<std::int64_t>(n_acts);
  const std::int64_t* act_dur = r.get_array<std::int64_t>(n_acts);
  const std::int64_t* act_down = r.get_array<std::int64_t>(n_acts);
  const std::int64_t* act_up = r.get_array<std::int64_t>(n_acts);
  const std::uint8_t* act_flags = r.get_array<std::uint8_t>(n_acts);
  trace.activities.resize(n_acts);
  for (std::size_t i = 0; i < n_acts; ++i) {
    if ((act_flags[i] & ~(kFlagUserInitiated | kFlagDeferrable)) != 0) {
      fail("unknown activity flag bits");
    }
    trace.activities[i] = {act_app[i],
                           act_start[i],
                           act_dur[i],
                           act_down[i],
                           act_up[i],
                           (act_flags[i] & kFlagUserInitiated) != 0,
                           (act_flags[i] & kFlagDeferrable) != 0};
  }
  return trace;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::byte> UserBlob::encode(std::span<const UserTrace> traces) {
  std::vector<std::byte> out;
  Writer w(out);
  w.put<std::uint32_t>(kBlobMagic);
  w.put<std::uint32_t>(kBlobVersion);
  w.put<std::uint64_t>(0);  // payload length, patched below
  w.put<std::uint32_t>(0);  // payload crc32, patched below
  w.put<std::uint32_t>(static_cast<std::uint32_t>(traces.size()));
  NM_ASSERT(out.size() == kHeaderBytes, "blob header layout drifted");
  for (const UserTrace& trace : traces) encode_trace(w, trace);

  const std::span<const std::byte> payload{out.data() + kHeaderBytes,
                                           out.size() - kHeaderBytes};
  const std::uint64_t payload_len = payload.size();
  const std::uint32_t crc = crc32(payload);
  std::memcpy(out.data() + 8, &payload_len, sizeof(payload_len));
  std::memcpy(out.data() + 16, &crc, sizeof(crc));
  return out;
}

std::vector<UserTrace> UserBlob::decode(std::span<const std::byte> bytes) {
  if (bytes.size() < kHeaderBytes) fail("image smaller than the header");
  Reader header(bytes.first(kHeaderBytes));
  if (header.get<std::uint32_t>() != kBlobMagic) fail("bad magic");
  const auto version = header.get<std::uint32_t>();
  if (version != kBlobVersion) {
    fail("unsupported version " + std::to_string(version));
  }
  const auto payload_len = header.get<std::uint64_t>();
  const auto crc = header.get<std::uint32_t>();
  const auto trace_count = header.get<std::uint32_t>();
  if (payload_len != bytes.size() - kHeaderBytes) {
    fail("payload length does not match the image");
  }
  const std::span<const std::byte> payload = bytes.subspan(kHeaderBytes);
  if (crc32(payload) != crc) fail("payload checksum mismatch");

  Reader r(payload);
  std::vector<UserTrace> traces;
  traces.reserve(trace_count);
  for (std::uint32_t i = 0; i < trace_count; ++i) {
    traces.push_back(decode_trace(r));
  }
  if (!r.done()) fail("trailing bytes after the last trace section");
  return traces;
}

void UserBlob::write_file(const std::string& path,
                          std::span<const UserTrace> traces) {
  const std::vector<std::byte> image = encode(traces);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    NM_REQUIRE(out.good(), "cannot open blob file for writing: " + tmp);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
    NM_REQUIRE(out.good(), "short write to blob file: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw Error("cannot rename blob into place: " + path);
  }
}

std::vector<UserTrace> UserBlob::read_file(const std::string& path) {
#ifdef NM_BLOB_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  NM_REQUIRE(fd >= 0, "cannot open blob file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw Error("cannot stat blob file: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw BlobError("blob: image smaller than the header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map != MAP_FAILED) {
    try {
      std::vector<UserTrace> traces =
          decode({static_cast<const std::byte*>(map), size});
      ::munmap(map, size);
      return traces;
    } catch (...) {
      ::munmap(map, size);
      throw;
    }
  }
  // mmap can fail on exotic filesystems — fall through to the read path.
#endif
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  NM_REQUIRE(in.good(), "cannot open blob file: " + path);
  const std::streamsize size_s = in.tellg();
  in.seekg(0);
  std::vector<std::byte> image(static_cast<std::size_t>(size_s));
  in.read(reinterpret_cast<char*>(image.data()), size_s);
  NM_REQUIRE(in.good(), "short read from blob file: " + path);
  return decode(image);
}

std::size_t trace_footprint_bytes(const UserTrace& trace) {
  std::size_t bytes = sizeof(UserTrace);
  bytes += trace.sessions.capacity() * sizeof(ScreenSession);
  bytes += trace.usages.capacity() * sizeof(AppUsage);
  bytes += trace.activities.capacity() * sizeof(NetworkActivity);
  bytes += trace.app_names.capacity() * sizeof(std::string);
  for (const std::string& name : trace.app_names) {
    // Short strings live inline in the SSO buffer already counted above.
    if (name.capacity() > sizeof(std::string)) bytes += name.capacity();
  }
  return bytes;
}

}  // namespace netmaster::mem
