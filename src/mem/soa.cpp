#include "mem/soa.hpp"

#include <string>

#include "common/error.hpp"

namespace netmaster::mem {

SessionColumns SessionColumns::build(
    std::span<const ScreenSession> sessions, Arena& arena) {
  const std::size_t n = sessions.size();
  std::span<TimeMs> begins = arena.alloc_array<TimeMs>(n);
  std::span<TimeMs> ends = arena.alloc_array<TimeMs>(n);
  for (std::size_t i = 0; i < n; ++i) {
    begins[i] = sessions[i].begin;
    ends[i] = sessions[i].end;
  }
  SessionColumns out;
  out.begins_ = begins;
  out.ends_ = ends;
  return out;
}

UsageColumns UsageColumns::build(std::span<const AppUsage> usages,
                                 Arena& arena) {
  const std::size_t n = usages.size();
  std::span<AppId> apps = arena.alloc_array<AppId>(n);
  std::span<TimeMs> times = arena.alloc_array<TimeMs>(n);
  std::span<DurationMs> durations = arena.alloc_array<DurationMs>(n);
  for (std::size_t i = 0; i < n; ++i) {
    apps[i] = usages[i].app;
    times[i] = usages[i].time;
    durations[i] = usages[i].duration;
  }
  UsageColumns out;
  out.apps_ = apps;
  out.times_ = times;
  out.durations_ = durations;
  return out;
}

ActivityColumns ActivityColumns::build(
    std::span<const NetworkActivity> activities, Arena& arena) {
  const std::size_t n = activities.size();
  std::span<AppId> apps = arena.alloc_array<AppId>(n);
  std::span<TimeMs> starts = arena.alloc_array<TimeMs>(n);
  std::span<DurationMs> durations = arena.alloc_array<DurationMs>(n);
  std::span<std::int64_t> down = arena.alloc_array<std::int64_t>(n);
  std::span<std::int64_t> up = arena.alloc_array<std::int64_t>(n);
  auto [user_init, user_init_words] = BitSpan::build(n, arena);
  auto [deferrable, deferrable_words] = BitSpan::build(n, arena);
  for (std::size_t i = 0; i < n; ++i) {
    const NetworkActivity& a = activities[i];
    apps[i] = a.app;
    starts[i] = a.start;
    durations[i] = a.duration;
    down[i] = a.bytes_down;
    up[i] = a.bytes_up;
    if (a.user_initiated) BitSpan::set(user_init_words, i);
    if (a.deferrable) BitSpan::set(deferrable_words, i);
  }
  ActivityColumns out;
  out.apps_ = apps;
  out.starts_ = starts;
  out.durations_ = durations;
  out.bytes_down_ = down;
  out.bytes_up_ = up;
  out.user_initiated_ = user_init;
  out.deferrable_ = deferrable;
  return out;
}

AppNameTable AppNameTable::build(std::span<const std::string> names,
                                 Arena& arena) {
  const std::size_t n = names.size();
  std::span<std::uint32_t> offsets = arena.alloc_array<std::uint32_t>(n + 1);
  std::size_t total = 0;
  for (const std::string& name : names) total += name.size();
  NM_REQUIRE(total <= UINT32_MAX, "app name table exceeds 4 GiB");
  std::span<char> chars = arena.alloc_array<char>(total);
  std::size_t at = 0;
  for (std::size_t i = 0; i < n; ++i) {
    offsets[i] = static_cast<std::uint32_t>(at);
    for (const char c : names[i]) chars[at++] = c;
  }
  offsets[n] = static_cast<std::uint32_t>(at);
  AppNameTable out;
  out.offsets_ = offsets;
  out.chars_ = chars;
  out.size_ = n;
  return out;
}

TraceColumns TraceColumns::build(const UserTrace& trace, Arena& arena) {
  TraceColumns out;
  out.user = trace.user;
  out.num_days = trace.num_days;
  out.app_names = AppNameTable::build(trace.app_names, arena);
  out.sessions = SessionColumns::build(trace.sessions, arena);
  out.usages = UsageColumns::build(trace.usages, arena);
  out.activities = ActivityColumns::build(trace.activities, arena);
  return out;
}

UserTrace TraceColumns::materialize() const {
  UserTrace trace;
  trace.user = user;
  trace.num_days = num_days;
  trace.app_names.reserve(app_names.size());
  for (std::size_t i = 0; i < app_names.size(); ++i) {
    trace.app_names.emplace_back(app_names.name(i));
  }
  trace.sessions.assign(sessions.begin(), sessions.end());
  trace.usages.assign(usages.begin(), usages.end());
  trace.activities.assign(activities.begin(), activities.end());
  return trace;
}

}  // namespace netmaster::mem
