// Structure-of-arrays trace columns over arena storage.
//
// The AoS `UserTrace` stays the ingest/serialization model (CSV
// parser, synth generator, fault injector), but the *resident* replay
// form of a fleet user is columnar: every field of its sessions, app
// usages and network activities lives in its own contiguous arena
// array. The replay hot paths (session binary searches, deferrable
// scans, RRC accounting) walk exactly the columns they need instead of
// striding over 48-byte AoS records, and the whole per-user set is a
// handful of arena slices rather than one heap node per vector.
//
// Each column view also offers AoS-compatible access — `operator[]`
// materialises the original record value, and proxy iterators make
// range-for and cursor loops read like the vector code they replaced —
// so policy code ports with minimal churn while the storage underneath
// is columnar. Views are cheap value types (spans); the arena that
// backs them must outlive every reader (see arena.hpp lifetime rules).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "mem/arena.hpp"
#include "trace/trace.hpp"

namespace netmaster::mem {

/// Random-access proxy iterator over a column view: dereferences to a
/// materialised record value. `View` provides value_type operator[].
template <typename View>
class SoaIterator {
 public:
  using value_type = typename View::value_type;
  using difference_type = std::ptrdiff_t;

  SoaIterator() = default;
  SoaIterator(const View* view, std::size_t i) : view_(view), i_(i) {}

  value_type operator*() const { return (*view_)[i_]; }

  /// Arrow support for cursor-style loops (`it->begin`): the proxy
  /// holds the materialised record for the duration of the access.
  struct ArrowProxy {
    value_type value;
    const value_type* operator->() const { return &value; }
  };
  ArrowProxy operator->() const { return ArrowProxy{(*view_)[i_]}; }

  SoaIterator& operator++() { ++i_; return *this; }
  SoaIterator operator++(int) { SoaIterator t = *this; ++i_; return t; }
  SoaIterator& operator--() { --i_; return *this; }
  SoaIterator& operator+=(difference_type d) { i_ += d; return *this; }
  friend SoaIterator operator+(SoaIterator it, difference_type d) {
    it += d;
    return it;
  }
  friend difference_type operator-(const SoaIterator& a,
                                   const SoaIterator& b) {
    return static_cast<difference_type>(a.i_) -
           static_cast<difference_type>(b.i_);
  }
  value_type operator[](difference_type d) const { return (*view_)[i_ + d]; }

  friend bool operator==(const SoaIterator& a, const SoaIterator& b) {
    return a.i_ == b.i_;
  }
  friend auto operator<=>(const SoaIterator& a, const SoaIterator& b) {
    return a.i_ <=> b.i_;
  }

  std::size_t index() const { return i_; }

 private:
  const View* view_ = nullptr;
  std::size_t i_ = 0;
};

/// Screen sessions as two sorted time columns.
class SessionColumns {
 public:
  using value_type = ScreenSession;
  using const_iterator = SoaIterator<SessionColumns>;

  SessionColumns() = default;

  static SessionColumns build(std::span<const ScreenSession> sessions,
                              Arena& arena);

  std::size_t size() const { return begins_.size(); }
  bool empty() const { return begins_.empty(); }

  ScreenSession operator[](std::size_t i) const {
    return {begins_[i], ends_[i]};
  }
  TimeMs begin_at(std::size_t i) const { return begins_[i]; }
  TimeMs end_at(std::size_t i) const { return ends_[i]; }

  /// Raw columns for binary searches and vectorised accounting.
  std::span<const TimeMs> begins() const { return begins_; }
  std::span<const TimeMs> ends() const { return ends_; }

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

 private:
  std::span<const TimeMs> begins_;
  std::span<const TimeMs> ends_;
};

/// Foreground app interactions, columnar.
class UsageColumns {
 public:
  using value_type = AppUsage;
  using const_iterator = SoaIterator<UsageColumns>;

  UsageColumns() = default;

  static UsageColumns build(std::span<const AppUsage> usages, Arena& arena);

  std::size_t size() const { return times_.size(); }
  bool empty() const { return times_.empty(); }

  AppUsage operator[](std::size_t i) const {
    return {apps_[i], times_[i], durations_[i]};
  }
  AppId app_at(std::size_t i) const { return apps_[i]; }
  TimeMs time_at(std::size_t i) const { return times_[i]; }

  std::span<const AppId> apps() const { return apps_; }
  std::span<const TimeMs> times() const { return times_; }
  std::span<const DurationMs> durations() const { return durations_; }

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

 private:
  std::span<const AppId> apps_;
  std::span<const TimeMs> times_;
  std::span<const DurationMs> durations_;
};

/// Network activities, columnar; the two booleans are packed bit sets.
class ActivityColumns {
 public:
  using value_type = NetworkActivity;
  using const_iterator = SoaIterator<ActivityColumns>;

  ActivityColumns() = default;

  static ActivityColumns build(std::span<const NetworkActivity> activities,
                               Arena& arena);

  std::size_t size() const { return starts_.size(); }
  bool empty() const { return starts_.empty(); }

  NetworkActivity operator[](std::size_t i) const {
    return {apps_[i],          starts_[i],
            durations_[i],     bytes_down_[i],
            bytes_up_[i],      user_initiated_.test(i),
            deferrable_.test(i)};
  }
  AppId app_at(std::size_t i) const { return apps_[i]; }
  TimeMs start_at(std::size_t i) const { return starts_[i]; }
  DurationMs duration_at(std::size_t i) const { return durations_[i]; }
  std::int64_t total_bytes_at(std::size_t i) const {
    return bytes_down_[i] + bytes_up_[i];
  }
  bool user_initiated_at(std::size_t i) const {
    return user_initiated_.test(i);
  }
  bool deferrable_at(std::size_t i) const { return deferrable_.test(i); }

  std::span<const AppId> apps() const { return apps_; }
  std::span<const TimeMs> starts() const { return starts_; }
  std::span<const DurationMs> durations() const { return durations_; }
  std::span<const std::int64_t> bytes_down() const { return bytes_down_; }
  std::span<const std::int64_t> bytes_up() const { return bytes_up_; }

  const_iterator begin() const { return {this, 0}; }
  const_iterator end() const { return {this, size()}; }

 private:
  std::span<const AppId> apps_;
  std::span<const TimeMs> starts_;
  std::span<const DurationMs> durations_;
  std::span<const std::int64_t> bytes_down_;
  std::span<const std::int64_t> bytes_up_;
  BitSpan user_initiated_;
  BitSpan deferrable_;
};

/// App-id → name table as one char blob plus an offsets column.
class AppNameTable {
 public:
  AppNameTable() = default;

  static AppNameTable build(std::span<const std::string> names,
                            Arena& arena);

  std::size_t size() const { return size_; }
  std::string_view name(std::size_t i) const {
    return {chars_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }

 private:
  std::span<const std::uint32_t> offsets_;  ///< size + 1 entries
  std::span<const char> chars_;
  std::size_t size_ = 0;
};

/// The full columnar form of one UserTrace, built into one arena.
struct TraceColumns {
  UserId user = 0;
  int num_days = 0;
  AppNameTable app_names;
  SessionColumns sessions;
  UsageColumns usages;
  ActivityColumns activities;

  static TraceColumns build(const UserTrace& trace, Arena& arena);

  /// Reconstructs the AoS trace (exactly equal to the build() input).
  UserTrace materialize() const;
};

}  // namespace netmaster::mem
