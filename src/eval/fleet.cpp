#include "eval/fleet.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "policy/baseline.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"

namespace netmaster::eval {

std::vector<PolicySpec> standard_policy_suite(
    const policy::NetMasterConfig& config) {
  std::vector<PolicySpec> suite;
  suite.push_back({"baseline", [](const UserTrace&) {
                     return std::make_unique<policy::BaselinePolicy>();
                   }});
  suite.push_back({"oracle", [profit = config.profit](const UserTrace&) {
                     return std::make_unique<policy::OraclePolicy>(profit);
                   }});
  suite.push_back({"netmaster", [config](const UserTrace& training) {
                     return std::make_unique<policy::NetMasterPolicy>(
                         training, config);
                   }});
  for (const double d : {10.0, 20.0, 60.0}) {
    suite.push_back({"delay&batch-" + std::to_string(static_cast<int>(d)) +
                         "s",
                     [d](const UserTrace&) {
                       return std::make_unique<policy::DelayBatchPolicy>(
                           seconds(d));
                     }});
  }
  return suite;
}

FleetReport run_fleet(const std::vector<synth::UserProfile>& profiles,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads) {
  NM_REQUIRE(!policies.empty(), "fleet needs at least one policy");
  const std::size_t n = profiles.size();
  const std::size_t m = policies.size();
  const RadioPowerParams& radio = config.netmaster.profit.radio;

  // ---- Per-user shared state: traces, index, baseline reference. ----
  // Each user's trace pair is generated once and its evaluation half
  // indexed once; every policy cell below replays against that index.
  std::vector<VolunteerTraces> traces(n);
  std::vector<std::unique_ptr<engine::TraceIndex>> index(n);
  std::vector<sim::SimReport> baseline(n);
  parallel_for(n, [&](std::size_t u) {
    traces[u] = make_traces(profiles[u], config);
    index[u] = std::make_unique<engine::TraceIndex>(traces[u].eval);
    const policy::BaselinePolicy base;
    baseline[u] = sim::account(traces[u].eval, base.run(*index[u]), radio);
  }, max_threads);

  // ---- The N×M cell grid. ----
  FleetReport report;
  report.num_users = n;
  report.num_policies = m;
  report.cells.resize(n * m);
  auto run_cell = [&](std::size_t c) {
    const std::size_t u = c / m;
    const std::size_t p = c % m;
    FleetCell& cell = report.cells[c];
    cell.user = profiles[u].id;
    cell.profile_name = profiles[u].name;
    cell.policy = policies[p].name;
    const auto pol = policies[p].make(traces[u].training);
    cell.report = sim::account(traces[u].eval, pol->run(*index[u]), radio);
    if (baseline[u].energy_j > 0.0) {
      cell.energy_saving = 1.0 - cell.report.energy_j / baseline[u].energy_j;
    }
    if (baseline[u].radio_on_ms > 0) {
      cell.radio_on_fraction =
          static_cast<double>(cell.report.radio_on_ms) /
          static_cast<double>(baseline[u].radio_on_ms);
    }
  };
  parallel_for(n * m, run_cell, max_threads);

  // ---- Per-policy aggregates, folded in fixed user order. ----
  report.aggregates.resize(m);
  for (std::size_t p = 0; p < m; ++p) {
    FleetAggregate& agg = report.aggregates[p];
    agg.policy = policies[p].name;
    for (std::size_t u = 0; u < n; ++u) {
      const FleetCell& cell = report.cell(u, p);
      agg.energy_saving.add(cell.energy_saving);
      agg.radio_on_fraction.add(cell.radio_on_fraction);
      agg.affected_fraction.add(cell.report.affected_fraction);
      agg.deferral_latency_s.add(cell.report.mean_deferral_latency_s);
      agg.total_energy_j += cell.report.energy_j;
    }
  }
  return report;
}

}  // namespace netmaster::eval
