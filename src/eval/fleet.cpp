#include "eval/fleet.hpp"

#include <utility>

#include "common/error.hpp"
#include "jobs/job_system.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "policy/baseline.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"

namespace netmaster::eval {

std::vector<PolicySpec> standard_policy_suite(
    const policy::NetMasterConfig& config) {
  std::vector<PolicySpec> suite;
  suite.push_back({"baseline",
                   [](const UserTrace&) {
                     return std::make_unique<policy::BaselinePolicy>();
                   },
                   {}});
  suite.push_back({"oracle",
                   [profit = config.profit](const UserTrace&) {
                     return std::make_unique<policy::OraclePolicy>(profit);
                   },
                   {}});
  suite.push_back({"netmaster",
                   [config](const UserTrace& training) {
                     return std::make_unique<policy::NetMasterPolicy>(
                         training, config);
                   },
                   {}});
  for (const double d : {10.0, 20.0, 60.0}) {
    suite.push_back({"delay&batch-" + std::to_string(static_cast<int>(d)) +
                         "s",
                     [d](const UserTrace&) {
                       return std::make_unique<policy::DelayBatchPolicy>(
                           seconds(d));
                     },
                     {}});
  }
  return suite;
}

std::vector<PolicySpec> solver_ablation_suite(
    const policy::NetMasterConfig& config, bool include_exact) {
  std::vector<sched::SolverChoice> backends = {sched::SolverChoice::kFptas,
                                               sched::SolverChoice::kGreedy,
                                               sched::SolverChoice::kAuto};
  if (include_exact) {
    backends.insert(backends.begin() + 1, sched::SolverChoice::kExact);
  }
  std::vector<PolicySpec> suite;
  for (const sched::SolverChoice backend : backends) {
    policy::NetMasterConfig variant = config;
    variant.solver = backend;
    suite.push_back(
        {std::string("netmaster[") + sched::to_string(backend) + "]",
         [variant](const UserTrace& training) {
           return std::make_unique<policy::NetMasterPolicy>(training,
                                                            variant);
         },
         {}});
  }
  return suite;
}

namespace {

/// Rebuilds the failure ledger and per-policy aggregates of `report`
/// from its cells, in deterministic (user, policy) order. `count_rows`
/// feeds the fleet.rows_failed counter — set only on fresh grids, not
/// when re-deriving a slice, so sweeps don't double-count.
void finalize_report(const EvalSession& session, FleetReport& report,
                     bool count_rows) {
  const std::size_t n = report.num_users;
  const std::size_t m = report.num_policies;

  report.failures.clear();
  for (std::size_t u = 0; u < n; ++u) {
    if (!session.ok(u)) {
      report.failures.push_back({session.user_id(u),
                                 session.profile_name(u), "",
                                 session.prep_error(u)});
      if (count_rows) {
        obs::Registry::global().counter("fleet.rows_failed").add(1);
      }
      continue;
    }
    for (std::size_t p = 0; p < m; ++p) {
      const FleetCell& cell = report.cell(u, p);
      if (cell.failed) {
        report.failures.push_back(
            {cell.user, cell.profile_name, cell.policy, cell.error});
      }
    }
  }

  // Per-policy aggregates, folded in fixed user order. Failed cells
  // are counted, not averaged.
  report.aggregates.assign(m, FleetAggregate{});
  for (std::size_t p = 0; p < m; ++p) {
    FleetAggregate& agg = report.aggregates[p];
    if (n > 0) agg.policy = report.cell(0, p).policy;
    for (std::size_t u = 0; u < n; ++u) {
      const FleetCell& cell = report.cell(u, p);
      if (cell.failed) {
        ++agg.failed_cells;
        continue;
      }
      if (cell.degraded) ++agg.degraded_cells;
      agg.energy_saving.add(cell.energy_saving);
      agg.radio_on_fraction.add(cell.radio_on_fraction);
      agg.affected_fraction.add(cell.report.affected_fraction);
      agg.deferral_latency_s.add(cell.report.mean_deferral_latency_s);
      agg.total_energy_j += cell.report.energy_j;
    }
  }
}

/// The body of one (user, policy) cell: mine, schedule, account. Writes
/// only its own pre-allocated cell — the deterministic result slot that
/// makes fleet output bit-identical regardless of worker count or steal
/// order. A throwing cell fails alone; a user whose preparation failed
/// poisons only its own row.
void run_cell(const EvalSession& session, const PolicySpec& spec,
              std::size_t u, FleetCell& cell) {
  cell.user = session.user_id(u);
  cell.profile_name = session.profile_name(u);
  cell.policy = spec.name;
  if (!session.ok(u)) {
    cell.failed = true;
    cell.error = session.prep_error(u);
    return;
  }
  const obs::SpanScope cell_span("fleet.cell");
  try {
    // One pin for the whole cell: rehydrates a spilled user at most
    // once and keeps the traces alive across mine/probe/account.
    const UserStore::Pin traces = session.traces(u);
    std::unique_ptr<policy::Policy> pol;
    {
      const obs::SpanScope mine_span("fleet.mine");
      pol = spec.make(traces.training());
    }
    if (spec.probe) {
      cell.probe_value = spec.probe(*pol, traces);
    }
    sim::PolicyOutcome outcome;
    {
      const obs::SpanScope schedule_span("fleet.schedule");
      outcome = pol->run(session.index(u));
    }
    const obs::SpanScope account_span("fleet.account");
    // Per-spec radio override, else the session's models. All-cellular
    // outcomes account bit-identically to the single-radio path.
    RadioSet radios;
    if (spec.radios) {
      radios = *spec.radios;
    } else {
      radios.cellular = session.config().netmaster.profit.radio;
      radios.wifi = session.config().netmaster.profit.wifi;
    }
    cell.report = sim::account(traces.eval(), outcome, radios);
  } catch (const std::exception& e) {
    cell.failed = true;
    cell.error = e.what();
    obs::Registry::global().counter("fleet.cells_failed").add(1);
    return;
  }
  cell.degraded = cell.report.degraded;
  if (cell.degraded) {
    obs::Registry::global().counter("fleet.cells_degraded").add(1);
  }
  const sim::SimReport& baseline = session.baseline(u);
  if (baseline.energy_j > 0.0) {
    cell.energy_saving = 1.0 - cell.report.energy_j / baseline.energy_j;
  }
  if (baseline.radio_on_ms > 0) {
    cell.radio_on_fraction =
        static_cast<double>(cell.report.radio_on_ms) /
        static_cast<double>(baseline.radio_on_ms);
  }
}

/// Sizes `report` for the grid and appends one task per (user, policy)
/// cell to `graph`. When `prep_tasks` is non-null (the fused
/// build+evaluate path), each cell depends on its user's prepare task,
/// so user u's row starts replaying as soon as u is prepared — no
/// fleet-wide barrier between preparation and evaluation.
void schedule_cells(const EvalSession& session,
                    const std::vector<PolicySpec>& policies,
                    FleetReport& report, jobs::TaskGraph& graph,
                    const std::vector<jobs::TaskId>* prep_tasks) {
  NM_REQUIRE(!policies.empty(), "fleet needs at least one policy");
  const std::size_t n = session.num_users();
  const std::size_t m = policies.size();
  report.num_users = n;
  report.num_policies = m;
  report.cells.resize(n * m);
  for (std::size_t c = 0; c < n * m; ++c) {
    const std::size_t u = c / m;
    const std::size_t p = c % m;
    // The graph runs after this function returns, so the task resolves
    // the radio models through the (caller-kept-alive) session instead
    // of capturing a local reference.
    const jobs::TaskId cell =
        graph.add([&session, &policies, &report, u, p, c] {
          run_cell(session, policies[p], u, report.cells[c]);
        });
    if (prep_tasks != nullptr) {
      graph.add_dependency((*prep_tasks)[u], cell);
    }
  }
}

/// The N×M cell grid over an already-prepared session.
FleetReport run_grid(const EvalSession& session,
                     const std::vector<PolicySpec>& policies,
                     unsigned max_threads) {
  FleetReport report;
  jobs::TaskGraph graph;
  schedule_cells(session, policies, report, graph, nullptr);
  jobs::run_graph(graph, max_threads);
  finalize_report(session, report, /*count_rows=*/true);
  return report;
}

}  // namespace

FleetReport run_fleet(const EvalSession& session,
                      const std::vector<PolicySpec>& policies,
                      unsigned max_threads) {
  FleetReport report;
  {
    const obs::SpanScope span("eval.run_fleet");
    report = run_grid(session, policies, max_threads);
  }
  // Snapshot hook: a fleet run is the natural export boundary, so a
  // driver only has to set NETMASTER_METRICS_OUT to get telemetry.
  obs::maybe_export_env();
  return report;
}

FleetReport run_fleet(const std::vector<synth::UserProfile>& profiles,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads) {
  FleetReport report;
  {
    const obs::SpanScope span("eval.run_fleet");
    // Fused build+evaluate: one graph carries every user's
    // trace_gen -> prepare chain and, hanging off each prepare, that
    // user's M policy cells. User u's row replays while user v is
    // still synthesizing — the per-stage fleet-wide barriers of the
    // old parallel_for pipeline are gone. Cells of a prep-failed user
    // still run (they record the row failure from prep_error).
    jobs::TaskGraph graph;
    std::vector<jobs::TaskId> prep_tasks;
    const EvalSession session(DeferBuild{}, profiles, config, graph,
                              prep_tasks);
    schedule_cells(session, policies, report, graph, &prep_tasks);
    jobs::run_graph(graph, max_threads);
    finalize_report(session, report, /*count_rows=*/true);
  }
  obs::maybe_export_env();
  return report;
}

FleetReport run_fleet(const std::vector<VolunteerTraces>& volunteers,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads) {
  FleetReport report;
  {
    const obs::SpanScope span("eval.run_fleet");
    // Same fused graph as the profile overload, minus trace_gen tasks:
    // volunteer admission is inline (it consumes the traces), so each
    // user's chain is prepare -> M cells.
    jobs::TaskGraph graph;
    std::vector<jobs::TaskId> prep_tasks;
    const EvalSession session(DeferBuild{}, volunteers, config, graph,
                              prep_tasks);
    schedule_cells(session, policies, report, graph, &prep_tasks);
    jobs::run_graph(graph, max_threads);
    finalize_report(session, report, /*count_rows=*/true);
  }
  obs::maybe_export_env();
  return report;
}

FleetReport slice_policies(const EvalSession& session,
                           const FleetReport& report, std::size_t first,
                           std::size_t count) {
  NM_REQUIRE(session.num_users() == report.num_users,
             "slice_policies session does not match the report");
  NM_REQUIRE(count > 0 && first + count <= report.num_policies,
             "slice_policies column range out of bounds");
  FleetReport slice;
  slice.num_users = report.num_users;
  slice.num_policies = count;
  slice.cells.reserve(report.num_users * count);
  for (std::size_t u = 0; u < report.num_users; ++u) {
    for (std::size_t p = 0; p < count; ++p) {
      slice.cells.push_back(report.cell(u, first + p));
    }
  }
  finalize_report(session, slice, /*count_rows=*/false);
  return slice;
}

}  // namespace netmaster::eval
