#include "eval/fleet.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/export.hpp"
#include "obs/span.hpp"
#include "policy/baseline.hpp"
#include "policy/delay_batch.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"

namespace netmaster::eval {

std::vector<PolicySpec> standard_policy_suite(
    const policy::NetMasterConfig& config) {
  std::vector<PolicySpec> suite;
  suite.push_back({"baseline", [](const UserTrace&) {
                     return std::make_unique<policy::BaselinePolicy>();
                   }});
  suite.push_back({"oracle", [profit = config.profit](const UserTrace&) {
                     return std::make_unique<policy::OraclePolicy>(profit);
                   }});
  suite.push_back({"netmaster", [config](const UserTrace& training) {
                     return std::make_unique<policy::NetMasterPolicy>(
                         training, config);
                   }});
  for (const double d : {10.0, 20.0, 60.0}) {
    suite.push_back({"delay&batch-" + std::to_string(static_cast<int>(d)) +
                         "s",
                     [d](const UserTrace&) {
                       return std::make_unique<policy::DelayBatchPolicy>(
                           seconds(d));
                     }});
  }
  return suite;
}

namespace {

/// Display identity of one fleet row.
struct UserLabel {
  UserId id = 0;
  std::string profile_name;
};

/// Shared grid engine. `prep_error[u]` non-empty marks user u as failed
/// before any policy ran (trace generation or baseline accounting
/// threw); the whole row is skipped and reported as one failure.
FleetReport run_fleet_impl(const std::vector<VolunteerTraces>& traces,
                           const std::vector<UserLabel>& labels,
                           std::vector<std::string> prep_error,
                           const std::vector<PolicySpec>& policies,
                           const ExperimentConfig& config,
                           unsigned max_threads) {
  NM_REQUIRE(!policies.empty(), "fleet needs at least one policy");
  const std::size_t n = traces.size();
  const std::size_t m = policies.size();
  const RadioPowerParams& radio = config.netmaster.profit.radio;

  // ---- Per-user shared state: index and baseline reference. Each
  // user's evaluation trace is indexed once; every policy cell below
  // replays against that index. A trace the baseline cannot replay
  // (validation or accounting failure) poisons only its own row. ----
  std::vector<std::unique_ptr<engine::TraceIndex>> index(n);
  std::vector<sim::SimReport> baseline(n);
  parallel_for(n, [&](std::size_t u) {
    if (!prep_error[u].empty()) return;
    const obs::SpanScope span("fleet.prepare");
    try {
      traces[u].eval.validate();
      index[u] = std::make_unique<engine::TraceIndex>(traces[u].eval);
      const policy::BaselinePolicy base;
      const obs::SpanScope account_span("fleet.account");
      baseline[u] =
          sim::account(traces[u].eval, base.run(*index[u]), radio);
    } catch (const std::exception& e) {
      prep_error[u] = e.what();
    }
  }, max_threads);

  // ---- The N×M cell grid. A throwing cell fails alone. ----
  FleetReport report;
  report.num_users = n;
  report.num_policies = m;
  report.cells.resize(n * m);
  auto run_cell = [&](std::size_t c) {
    const std::size_t u = c / m;
    const std::size_t p = c % m;
    FleetCell& cell = report.cells[c];
    cell.user = labels[u].id;
    cell.profile_name = labels[u].profile_name;
    cell.policy = policies[p].name;
    if (!prep_error[u].empty()) {
      cell.failed = true;
      cell.error = prep_error[u];
      return;
    }
    const obs::SpanScope cell_span("fleet.cell");
    try {
      std::unique_ptr<policy::Policy> pol;
      {
        const obs::SpanScope mine_span("fleet.mine");
        pol = policies[p].make(traces[u].training);
      }
      sim::PolicyOutcome outcome;
      {
        const obs::SpanScope schedule_span("fleet.schedule");
        outcome = pol->run(*index[u]);
      }
      const obs::SpanScope account_span("fleet.account");
      cell.report = sim::account(traces[u].eval, outcome, radio);
    } catch (const std::exception& e) {
      cell.failed = true;
      cell.error = e.what();
      obs::Registry::global().counter("fleet.cells_failed").add(1);
      return;
    }
    cell.degraded = cell.report.degraded;
    if (cell.degraded) {
      obs::Registry::global().counter("fleet.cells_degraded").add(1);
    }
    if (baseline[u].energy_j > 0.0) {
      cell.energy_saving = 1.0 - cell.report.energy_j / baseline[u].energy_j;
    }
    if (baseline[u].radio_on_ms > 0) {
      cell.radio_on_fraction =
          static_cast<double>(cell.report.radio_on_ms) /
          static_cast<double>(baseline[u].radio_on_ms);
    }
  };
  parallel_for(n * m, run_cell, max_threads);

  // ---- Failure ledger, in deterministic (user, policy) order: one
  // entry per poisoned row, one per individually failed cell. ----
  for (std::size_t u = 0; u < n; ++u) {
    if (!prep_error[u].empty()) {
      report.failures.push_back(
          {labels[u].id, labels[u].profile_name, "", prep_error[u]});
      obs::Registry::global().counter("fleet.rows_failed").add(1);
      continue;
    }
    for (std::size_t p = 0; p < m; ++p) {
      const FleetCell& cell = report.cell(u, p);
      if (cell.failed) {
        report.failures.push_back(
            {cell.user, cell.profile_name, cell.policy, cell.error});
      }
    }
  }

  // ---- Per-policy aggregates, folded in fixed user order. Failed
  // cells are counted, not averaged. ----
  report.aggregates.resize(m);
  for (std::size_t p = 0; p < m; ++p) {
    FleetAggregate& agg = report.aggregates[p];
    agg.policy = policies[p].name;
    for (std::size_t u = 0; u < n; ++u) {
      const FleetCell& cell = report.cell(u, p);
      if (cell.failed) {
        ++agg.failed_cells;
        continue;
      }
      if (cell.degraded) ++agg.degraded_cells;
      agg.energy_saving.add(cell.energy_saving);
      agg.radio_on_fraction.add(cell.radio_on_fraction);
      agg.affected_fraction.add(cell.report.affected_fraction);
      agg.deferral_latency_s.add(cell.report.mean_deferral_latency_s);
      agg.total_energy_j += cell.report.energy_j;
    }
  }
  return report;
}

}  // namespace

FleetReport run_fleet(const std::vector<synth::UserProfile>& profiles,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads) {
  FleetReport report;
  {
    const obs::SpanScope span("eval.run_fleet");
    const std::size_t n = profiles.size();
    std::vector<VolunteerTraces> traces(n);
    std::vector<UserLabel> labels(n);
    std::vector<std::string> prep_error(n);
    parallel_for(n, [&](std::size_t u) {
      const obs::SpanScope gen_span("fleet.trace_gen");
      labels[u] = {profiles[u].id, profiles[u].name};
      try {
        traces[u] = make_traces(profiles[u], config);
      } catch (const std::exception& e) {
        prep_error[u] = e.what();
      }
    }, max_threads);
    report = run_fleet_impl(traces, labels, std::move(prep_error),
                            policies, config, max_threads);
  }
  // Snapshot hook: a fleet run is the natural export boundary, so a
  // driver only has to set NETMASTER_METRICS_OUT to get telemetry.
  obs::maybe_export_env();
  return report;
}

FleetReport run_fleet(const std::vector<VolunteerTraces>& volunteers,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads) {
  FleetReport report;
  {
    const obs::SpanScope span("eval.run_fleet");
    const std::size_t n = volunteers.size();
    std::vector<UserLabel> labels(n);
    for (std::size_t u = 0; u < n; ++u) {
      labels[u] = {volunteers[u].eval.user, "volunteer"};
    }
    report = run_fleet_impl(volunteers, labels,
                            std::vector<std::string>(n), policies, config,
                            max_threads);
  }
  obs::maybe_export_env();
  return report;
}

}  // namespace netmaster::eval
