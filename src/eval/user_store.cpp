#include "eval/user_store.hpp"

#include <chrono>
#include <random>
#include <utility>

#include "common/error.hpp"
#include "mem/blob.hpp"
#include "obs/metrics.hpp"

namespace netmaster::eval {

namespace {

/// Spill-path telemetry, resolved once per process.
struct StoreMetrics {
  obs::Counter& evictions;
  obs::Counter& rehydrations;
  obs::Counter& spilled_bytes;
  obs::Histogram& rehydrate_ns;

  static StoreMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static StoreMetrics m{
        reg.counter("store.evictions"),
        reg.counter("store.rehydrations"),
        reg.counter("store.spilled_bytes"),
        reg.histogram("store.rehydrate_ns",
                      {1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}),
    };
    return m;
  }
};

std::size_t pair_footprint(const VolunteerTraces& traces) {
  return mem::trace_footprint_bytes(traces.training) +
         mem::trace_footprint_bytes(traces.eval);
}

}  // namespace

UserStore::UserStore(UserStoreConfig config) : config_(std::move(config)) {}

UserStore::~UserStore() {
  std::error_code ec;  // best-effort cleanup; never throw from a dtor
  if (owns_spill_dir_) {
    std::filesystem::remove_all(spill_dir_, ec);
    return;
  }
  // Caller-provided directory: remove only the files this store wrote.
  for (const Entry& entry : entries_) {
    if (!entry.blob.empty()) std::filesystem::remove(entry.blob, ec);
  }
}

void UserStore::resize(std::size_t n) {
  const std::lock_guard<std::mutex> lock(mutex_);
  NM_REQUIRE(n >= entries_.size(), "UserStore::resize cannot shrink");
  entries_.resize(n);
}

void UserStore::admit(std::size_t slot, VolunteerTraces traces) {
  const std::size_t bytes = pair_footprint(traces);

  // Spill first, outside the lock: once the blob is on disk an
  // eviction is a pure drop of the strong reference.
  std::filesystem::path blob;
  if (spill_enabled()) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      NM_REQUIRE(slot < entries_.size(), "UserStore slot out of range");
      ensure_spill_dir();
    }
    blob = blob_path(slot);
    const UserTrace pair[] = {traces.training, traces.eval};
    mem::UserBlob::write_file(blob.string(), pair);
    StoreMetrics::get().spilled_bytes.add(
        std::filesystem::file_size(blob));
  }

  auto hydration = std::make_shared<Pin::Hydration>();
  hydration->traces = std::move(traces);

  const std::lock_guard<std::mutex> lock(mutex_);
  NM_REQUIRE(slot < entries_.size(), "UserStore slot out of range");
  Entry& entry = entries_[slot];
  NM_REQUIRE(entry.resident == nullptr && entry.blob.empty(),
             "UserStore slot admitted twice");
  entry.resident = std::move(hydration);
  entry.blob = std::move(blob);
  entry.bytes = bytes;
  entry.last_touch = ++clock_;
  resident_bytes_ += bytes;
  evict_over_cap(slot);
}

UserStore::Pin UserStore::pin(std::size_t slot) const {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    NM_REQUIRE(slot < entries_.size(), "UserStore slot out of range");
    Entry& entry = entries_[slot];
    if (entry.resident != nullptr) {
      entry.last_touch = ++clock_;
      return Pin(entry.resident);
    }
    NM_REQUIRE(!entry.blob.empty(),
               "UserStore::pin on a slot that was never admitted");
  }

  // Cold: rehydrate outside the lock (decode is the expensive part),
  // then install unless a racing pin beat us to it.
  const std::filesystem::path blob = [&] {
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_[slot].blob;
  }();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<UserTrace> traces = mem::UserBlob::read_file(blob.string());
  NM_REQUIRE(traces.size() == 2,
             "UserStore blob must hold exactly the train/eval pair");
  const auto t1 = std::chrono::steady_clock::now();
  StoreMetrics& metrics = StoreMetrics::get();
  metrics.rehydrations.add(1);
  metrics.rehydrate_ns.add(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
          .count()));

  auto hydration = std::make_shared<Pin::Hydration>();
  hydration->traces.training = std::move(traces[0]);
  hydration->traces.eval = std::move(traces[1]);

  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entries_[slot];
  if (entry.resident == nullptr) {
    entry.resident = std::move(hydration);
    resident_bytes_ += entry.bytes;
    entry.last_touch = ++clock_;
    evict_over_cap(slot);
  } else {
    entry.last_touch = ++clock_;
  }
  return Pin(entry.resident);
}

std::size_t UserStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t UserStore::resident_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return resident_bytes_;
}

std::size_t UserStore::resident_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const Entry& entry : entries_) {
    if (entry.resident != nullptr) ++n;
  }
  return n;
}

std::uint64_t UserStore::evictions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

std::filesystem::path UserStore::spill_dir() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spill_dir_;
}

void UserStore::evict_over_cap(std::size_t protect) const {
  while (resident_bytes_ > config_.cache_cap_bytes) {
    Entry* victim = nullptr;
    for (Entry& entry : entries_) {
      if (entry.resident == nullptr || entry.blob.empty()) continue;
      if (&entry == &entries_[protect]) continue;
      if (victim == nullptr || entry.last_touch < victim->last_touch) {
        victim = &entry;
      }
    }
    if (victim == nullptr) break;  // only the protected slot is left
    // Retire the lifetime so every TraceIndex built on this hydration
    // reports its source gone, then drop the store's reference. Any
    // outstanding Pin still keeps the bytes alive.
    victim->resident->lifetime.retire();
    victim->resident.reset();
    resident_bytes_ -= victim->bytes;
    ++evictions_;
    StoreMetrics::get().evictions.add(1);
  }
}

std::filesystem::path UserStore::blob_path(std::size_t slot) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spill_dir_ / ("user_" + std::to_string(slot) + ".nmub");
}

void UserStore::ensure_spill_dir() const {
  if (!spill_dir_.empty()) return;
  if (!config_.spill_dir.empty()) {
    spill_dir_ = config_.spill_dir;
    std::filesystem::create_directories(spill_dir_);
    return;
  }
  // Unique auto directory: pid + random suffix avoids collisions with
  // concurrent processes sharing the temp root.
  std::random_device rd;
  const auto tag = static_cast<unsigned long>(rd()) ^
                   (static_cast<unsigned long>(rd()) << 16);
  spill_dir_ = std::filesystem::temp_directory_path() /
               ("netmaster_store_" + std::to_string(tag));
  std::filesystem::create_directories(spill_dir_);
  owns_spill_dir_ = true;
}

}  // namespace netmaster::eval
