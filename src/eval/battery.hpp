// Battery-life framing for radio energy numbers.
//
// The evaluation reports joules; users think in battery percent. A
// 2014-class phone battery (the paper's HTC One X era) holds ~2100 mAh
// at 3.8 V ≈ 28.7 kJ. These helpers convert a radio energy figure into
// the fraction of a full charge it burns per day.
#pragma once

namespace netmaster::eval {

/// Full-charge energy of the reference battery, joules.
inline constexpr double kBatteryJoules = 2100.0 * 3.8 * 3.6;  // ≈ 28.7 kJ

/// Fraction of a full charge consumed per day by `energy_j` spread over
/// `days` days.
constexpr double battery_fraction_per_day(double energy_j, int days) {
  return energy_j / (static_cast<double>(days) * kBatteryJoules);
}

}  // namespace netmaster::eval
