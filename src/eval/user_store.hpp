// UserStore — the fleet's bounded trace cache (ROADMAP item 2).
//
// A million-user fleet cannot keep every volunteer's AoS traces
// resident: the traces dominate the per-user footprint once the replay
// index is arena-backed. The store owns every user's train/eval trace
// pair and keeps at most `cache_cap_bytes` of them hydrated; the rest
// live as compact UserBlob files in a spill directory and are
// rehydrated on demand. Serialization is lossless (all-integer
// columns, CRC-guarded), so results are bit-for-bit identical no
// matter which users happen to be resident when.
//
// Concurrency: admit() and pin() are thread-safe. A Pin holds a
// shared_ptr to the hydration, so a concurrent eviction never frees
// memory out from under a reader — eviction just drops the store's
// strong reference (and retires the hydration's mem::Lifetime, which
// flips any TraceIndex handle built on it to "source gone").
//
// With cache_cap_bytes == 0 (the default) the store is a plain
// in-memory table: nothing is written to disk and nothing is ever
// evicted, preserving the classic all-resident behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mem/arena.hpp"
#include "trace/trace.hpp"

namespace netmaster::eval {

/// Train/eval split of one synthetic volunteer.
struct VolunteerTraces {
  UserTrace training;
  UserTrace eval;
};

struct UserStoreConfig {
  /// Target resident-set size for hydrated traces. 0 disables spilling
  /// entirely (everything stays in memory, nothing touches disk). The
  /// cap is honoured modulo pinned users: a Pin keeps its hydration
  /// alive regardless.
  std::size_t cache_cap_bytes = 0;
  /// Where blobs go. Empty = a unique directory under the system temp
  /// dir, created lazily and removed by the destructor.
  std::string spill_dir;
};

class UserStore {
 public:
  explicit UserStore(UserStoreConfig config = {});
  ~UserStore();
  UserStore(const UserStore&) = delete;
  UserStore& operator=(const UserStore&) = delete;

  /// Shared-ownership view of one user's hydrated traces. Holding the
  /// Pin keeps the hydration alive across evictions.
  class Pin {
   public:
    Pin() = default;

    const VolunteerTraces& get() const { return hydration_->traces; }
    operator const VolunteerTraces&() const { return get(); }
    const UserTrace& training() const { return get().training; }
    const UserTrace& eval() const { return get().eval; }

    /// Lifetime of THIS hydration: retired when the store evicts it
    /// (a later pin() rehydrates into a fresh hydration with a fresh
    /// lifetime). Feed it to TraceIndex so a dangling source is caught.
    mem::LifetimeHandle lifetime() const {
      return hydration_->lifetime.handle();
    }

   private:
    friend class UserStore;
    struct Hydration {
      VolunteerTraces traces;
      mem::Lifetime lifetime;
    };
    explicit Pin(std::shared_ptr<const Hydration> h)
        : hydration_(std::move(h)) {}
    std::shared_ptr<const Hydration> hydration_;
  };

  /// Grows the table to `n` slots (slot == EvalSession user index).
  void resize(std::size_t n);

  /// Installs slot `slot`'s traces. With spilling enabled the blob is
  /// written immediately (evictions later are a pure drop), then the
  /// cache is trimmed back under the cap. Thread-safe across distinct
  /// slots; admitting the same slot twice is an error.
  void admit(std::size_t slot, VolunteerTraces traces);

  /// Hydrated traces for `slot`, rehydrating from the spill file when
  /// the user is cold. Touches the LRU clock and trims the cache.
  Pin pin(std::size_t slot) const;

  std::size_t size() const;
  /// Estimated heap bytes of the currently hydrated traces.
  std::size_t resident_bytes() const;
  std::size_t resident_count() const;
  std::uint64_t evictions() const;
  bool spill_enabled() const { return config_.cache_cap_bytes > 0; }
  /// Empty until the first spill write when auto-created.
  std::filesystem::path spill_dir() const;

 private:
  struct Entry {
    std::shared_ptr<Pin::Hydration> resident;
    std::filesystem::path blob;  ///< empty = never spilled
    std::size_t bytes = 0;       ///< footprint estimate of the pair
    std::uint64_t last_touch = 0;
  };

  /// Requires mutex_ held. Drops least-recently-used hydrations (never
  /// slot `protect`) until the resident set fits the cap.
  void evict_over_cap(std::size_t protect) const;
  std::filesystem::path blob_path(std::size_t slot) const;
  /// Requires mutex_ held; creates the auto spill dir on first use.
  void ensure_spill_dir() const;

  UserStoreConfig config_;
  mutable std::mutex mutex_;
  mutable std::vector<Entry> entries_;
  mutable std::filesystem::path spill_dir_;  ///< resolved on first write
  mutable bool owns_spill_dir_ = false;
  mutable std::uint64_t clock_ = 0;
  mutable std::size_t resident_bytes_ = 0;
  mutable std::uint64_t evictions_ = 0;
};

}  // namespace netmaster::eval
