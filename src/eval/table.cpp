#include "eval/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace netmaster::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  NM_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  NM_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    }
    os << " |\n";
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0
     << '%';
  return os.str();
}

void print_csv(std::ostream& os, const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows) {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      NM_REQUIRE(cells[c].find(',') == std::string::npos,
                 "CSV cells must not contain commas");
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  emit(headers);
  for (const auto& row : rows) emit(row);
}

}  // namespace netmaster::eval
