// Fleet-scale batch evaluation: N users × M policies in one run.
//
// The per-figure runners in experiments.hpp each re-derive traces and
// session state for every policy they touch. FleetRunner is the shared
// engine underneath a scale-out sweep: every user's evaluation trace is
// generated and indexed exactly once (engine::TraceIndex), then all M
// policies replay against that shared index, parallelized over the full
// N×M cell grid. Results come back both per cell and aggregated per
// policy across the fleet.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "engine/trace_index.hpp"
#include "eval/experiments.hpp"
#include "policy/policy.hpp"
#include "sim/accounting.hpp"
#include "synth/profiles.hpp"

namespace netmaster::eval {

/// A named policy factory. NetMaster trains per user, so the factory
/// receives the user's training trace; stateless policies ignore it.
/// Invoked once per (user, policy) cell.
struct PolicySpec {
  std::string name;
  std::function<std::unique_ptr<policy::Policy>(const UserTrace& training)>
      make;
};

/// The §VI comparison suite: baseline, oracle, NetMaster, and
/// delay&batch at 10/20/60 s.
std::vector<PolicySpec> standard_policy_suite(
    const policy::NetMasterConfig& config);

/// One (user, policy) cell of the fleet grid.
struct FleetCell {
  UserId user = 0;
  std::string profile_name;
  std::string policy;
  sim::SimReport report;
  double energy_saving = 0.0;      ///< 1 − E/E_baseline for this user
  double radio_on_fraction = 0.0;  ///< radio-on / baseline radio-on
  bool failed = false;             ///< this cell threw; report is empty
  bool degraded = false;           ///< policy took its fallback path
  std::string error;               ///< what() of the failure, if any
};

/// One isolated failure inside a fleet run. A failure during per-user
/// preparation (poisoned trace, failing baseline) produces one entry
/// with an empty `policy` covering the whole row; a failure inside a
/// single (user, policy) cell names the policy.
struct FleetFailure {
  UserId user = 0;
  std::string profile_name;
  std::string policy;  ///< empty = the whole user row failed in prep
  std::string error;
};

/// One policy's distribution of per-user metrics across the fleet.
/// Failed cells are excluded from the statistics and counted instead.
struct FleetAggregate {
  std::string policy;
  StreamingStats energy_saving;
  StreamingStats radio_on_fraction;
  StreamingStats affected_fraction;
  StreamingStats deferral_latency_s;  ///< per-user mean latencies
  double total_energy_j = 0.0;
  std::size_t failed_cells = 0;    ///< cells excluded from the stats
  std::size_t degraded_cells = 0;  ///< cells served by a fallback path
};

/// Full N×M result grid plus per-policy aggregates.
struct FleetReport {
  std::size_t num_users = 0;
  std::size_t num_policies = 0;
  std::vector<FleetCell> cells;           ///< user-major: [u * M + m]
  std::vector<FleetAggregate> aggregates; ///< one per policy, in order
  /// Isolated failures, in deterministic (user, policy) order. Empty on
  /// a healthy run. One user's poisoned trace never aborts the other
  /// N−1 users — it lands here instead.
  std::vector<FleetFailure> failures;

  const FleetCell& cell(std::size_t user, std::size_t policy) const {
    return cells[user * num_policies + policy];
  }
};

/// Evaluates every policy on every profile. Traces are generated and
/// indexed once per user and shared across all policies; the N×M cell
/// grid runs under parallel_for, so results are deterministic in
/// (profiles, policies, config) regardless of thread count
/// (`max_threads` = 0 means hardware concurrency). Per-user errors are
/// isolated into FleetReport::failures; the run itself never throws on
/// bad user data.
FleetReport run_fleet(const std::vector<synth::UserProfile>& profiles,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads = 0);

/// Same grid over pre-built trace pairs — the entry point for replaying
/// recorded (possibly corrupted) volunteer data instead of synthesizing
/// from profiles. Each user's traces are consumed as-is; a trace that
/// cannot be evaluated fails only its own row.
FleetReport run_fleet(const std::vector<VolunteerTraces>& volunteers,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads = 0);

}  // namespace netmaster::eval
