// Fleet-scale batch evaluation: N users × M policies in one run.
//
// run_fleet is the one replay engine under every §VI figure runner:
// the per-user state (traces, engine::TraceIndex, baseline report)
// lives in an eval::EvalSession built exactly once, then all M
// policies replay against the shared indexes, parallelized over the
// full N×M cell grid. Results come back both per cell and aggregated
// per policy across the fleet, with per-user failures isolated into a
// ledger instead of aborting the run.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "eval/session.hpp"
#include "policy/policy.hpp"
#include "sim/accounting.hpp"
#include "synth/profiles.hpp"

namespace netmaster::eval {

/// A named policy factory. NetMaster trains per user, so the factory
/// receives the user's training trace; stateless policies ignore it.
/// Invoked once per (user, policy) cell.
///
/// `probe`, when set, is evaluated on the constructed policy before the
/// replay and lands in FleetCell::probe_value — the hook for
/// policy-level metrics that are not part of the SimReport (e.g. the
/// Fig. 10c prediction accuracy).
struct PolicySpec {
  std::string name;
  std::function<std::unique_ptr<policy::Policy>(const UserTrace& training)>
      make;
  std::function<double(const policy::Policy& policy,
                       const VolunteerTraces& traces)>
      probe;
  /// Per-spec radio override for the accounting pass: when set, this
  /// spec's cells are accounted under these radio models instead of the
  /// session's (config().netmaster.profit.{radio, wifi}). This is how
  /// one sweep grid carries policy columns on different radio profiles
  /// (WCDMA vs. LTE vs. NR) without rebuilding the session per profile.
  /// Note the relative metrics (energy_saving, radio_on_fraction) keep
  /// the session baseline as denominator — cross-profile comparisons
  /// should ratio raw cell energies against a baseline column carrying
  /// the same override.
  std::optional<RadioSet> radios;
};

/// The §VI comparison suite: baseline, oracle, NetMaster, and
/// delay&batch at 10/20/60 s. The single source of truth for the
/// policy roster — every figure runner consumes these specs.
std::vector<PolicySpec> standard_policy_suite(
    const policy::NetMasterConfig& config);

/// Solver-ablation roster: one NetMaster variant per SinKnap backend
/// ("netmaster[fptas]", "netmaster[greedy]", "netmaster[auto]"), all
/// other knobs taken from `config`. `include_exact` adds
/// "netmaster[exact]"; it is off by default because the weight-indexed
/// exact DP throws on byte-scale slot capacities (hours × 25 kB/s blows
/// its table limit) — enable it only on capacity-bounded instances.
std::vector<PolicySpec> solver_ablation_suite(
    const policy::NetMasterConfig& config, bool include_exact = false);

/// One (user, policy) cell of the fleet grid.
struct FleetCell {
  UserId user = 0;
  std::string profile_name;
  std::string policy;
  sim::SimReport report;
  double energy_saving = 0.0;      ///< 1 − E/E_baseline for this user
  double radio_on_fraction = 0.0;  ///< radio-on / baseline radio-on
  double probe_value = 0.0;        ///< PolicySpec::probe result, if set
  bool failed = false;             ///< this cell threw; report is empty
  bool degraded = false;           ///< policy took its fallback path
  std::string error;               ///< what() of the failure, if any
};

/// One isolated failure inside a fleet run. A failure during per-user
/// preparation (poisoned trace, failing baseline) produces one entry
/// with an empty `policy` covering the whole row; a failure inside a
/// single (user, policy) cell names the policy.
struct FleetFailure {
  UserId user = 0;
  std::string profile_name;
  std::string policy;  ///< empty = the whole user row failed in prep
  std::string error;
};

/// One policy's distribution of per-user metrics across the fleet.
/// Failed cells are excluded from the statistics and counted instead.
struct FleetAggregate {
  std::string policy;
  StreamingStats energy_saving;
  StreamingStats radio_on_fraction;
  StreamingStats affected_fraction;
  StreamingStats deferral_latency_s;  ///< per-user mean latencies
  double total_energy_j = 0.0;
  std::size_t failed_cells = 0;    ///< cells excluded from the stats
  std::size_t degraded_cells = 0;  ///< cells served by a fallback path
};

/// Full N×M result grid plus per-policy aggregates.
struct FleetReport {
  std::size_t num_users = 0;
  std::size_t num_policies = 0;
  std::vector<FleetCell> cells;           ///< user-major: [u * M + m]
  std::vector<FleetAggregate> aggregates; ///< one per policy, in order
  /// Isolated failures, in deterministic (user, policy) order. Empty on
  /// a healthy run. One user's poisoned trace never aborts the other
  /// N−1 users — it lands here instead.
  std::vector<FleetFailure> failures;

  /// Raw indexer for hot loops: no bounds checking.
  const FleetCell& cell(std::size_t user, std::size_t policy) const {
    return cells[user * num_policies + policy];
  }

  /// Bounds-checked cell access — throws netmaster::Error on an
  /// out-of-range index or a mismatched/truncated grid. The reducers
  /// use this; `cell()` stays for hot loops.
  const FleetCell& at(std::size_t user, std::size_t policy) const {
    NM_REQUIRE(user < num_users && policy < num_policies,
               "FleetReport::at (user, policy) index out of range");
    const std::size_t c = user * num_policies + policy;
    NM_REQUIRE(c < cells.size(),
               "FleetReport::at grid is inconsistent with its cells");
    return cells[c];
  }
};

/// Evaluates every policy on every prepared user of the session. The
/// session's traces/indexes/baselines are shared read-only state; only
/// the N×M cell grid runs here, as independent tasks on the
/// work-stealing pool writing pre-allocated result slots, so results
/// are deterministic in (session, policies) regardless of worker count
/// or steal order (`max_threads` = 0 means hardware concurrency,
/// overridable via NETMASTER_THREADS / set_default_max_threads). Per-
/// user errors are isolated into FleetReport::failures; the run itself
/// never throws on bad user data.
FleetReport run_fleet(const EvalSession& session,
                      const std::vector<PolicySpec>& policies,
                      unsigned max_threads = 0);

/// Fused build+evaluate: one task graph carries every user's
/// trace_gen -> prepare chain with that user's M policy cells hanging
/// off the prepare task, so a prepared user's row replays while slower
/// users are still synthesizing — no fleet-wide stage barrier. Results
/// are bit-identical to building an EvalSession first and calling the
/// session overload. Prefer the session overload when running more
/// than one grid (sweeps, repeated figures) — the session amortizes
/// trace generation and indexing across runs.
FleetReport run_fleet(const std::vector<synth::UserProfile>& profiles,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads = 0);

/// Same grid over pre-built trace pairs — the entry point for replaying
/// recorded (possibly corrupted) volunteer data instead of synthesizing
/// from profiles. Each user's traces are consumed as-is; a trace that
/// cannot be evaluated fails only its own row.
FleetReport run_fleet(const std::vector<VolunteerTraces>& volunteers,
                      const std::vector<PolicySpec>& policies,
                      const ExperimentConfig& config,
                      unsigned max_threads = 0);

/// Extracts the policy columns [first, first + count) of `report` into
/// a standalone FleetReport with its own failure ledger and per-policy
/// aggregates. The session must be the one `report` was produced from
/// (it distinguishes whole-row preparation failures from individual
/// cell failures). This is how the sweep driver splits one
/// (point × user × policy) grid back into per-point reports.
FleetReport slice_policies(const EvalSession& session,
                           const FleetReport& report, std::size_t first,
                           std::size_t count);

}  // namespace netmaster::eval
