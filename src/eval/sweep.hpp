// Generic sweep driver over a cached EvalSession.
//
// A sweep is (points × users × policies): every point contributes a
// roster of PolicySpecs, the whole grid runs as ONE fleet (a single
// task graph of independent cells on the work-stealing pool, sharing
// the session's per-user TraceIndexes), and the combined report is
// sliced back into one
// FleetReport per point for the caller's reduction. Trace synthesis and
// indexing are paid once per session, not once per point, and the
// fleet's failure isolation, degradation counters and span attribution
// reach every figure for free.
//
//   EvalSession session(profiles, config);
//   auto points = sweep(
//       session, delays,
//       [](double d) { return std::vector<PolicySpec>{delay_spec(d)}; },
//       [&](double d, const FleetReport& r) { return reduce(d, r); });
//
// Reductions run sequentially in point order, so results are
// deterministic in (session, points) regardless of thread count.
#pragma once

#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "eval/fleet.hpp"
#include "eval/session.hpp"

namespace netmaster::eval {

/// Runs `make_policies(point)` for every point, evaluates the combined
/// (point × user × policy) grid through run_fleet, and maps
/// `reduce(point, per_point_report)` over the slices. Returns the
/// reduction results in point order.
template <typename Point, typename MakePolicies, typename Reduce>
auto sweep(const EvalSession& session, const std::vector<Point>& points,
           MakePolicies&& make_policies, Reduce&& reduce,
           unsigned max_threads = 0) {
  using Result = std::decay_t<decltype(reduce(
      points.front(), std::declval<const FleetReport&>()))>;
  std::vector<Result> results;
  if (points.empty()) return results;

  std::vector<PolicySpec> all;
  std::vector<std::size_t> offsets;
  offsets.reserve(points.size() + 1);
  for (const Point& point : points) {
    offsets.push_back(all.size());
    std::vector<PolicySpec> specs = make_policies(point);
    NM_REQUIRE(!specs.empty(), "sweep point produced an empty roster");
    for (PolicySpec& spec : specs) all.push_back(std::move(spec));
  }
  offsets.push_back(all.size());

  const FleetReport grid = run_fleet(session, all, max_threads);

  results.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const FleetReport slice = slice_policies(
        session, grid, offsets[i], offsets[i + 1] - offsets[i]);
    results.push_back(reduce(points[i], slice));
  }
  return results;
}

}  // namespace netmaster::eval
