#include "eval/experiments.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.hpp"
#include "eval/fleet.hpp"
#include "eval/sweep.hpp"
#include "mining/habits.hpp"
#include "policy/baseline.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "policy/netmaster.hpp"
#include "policy/oracle.hpp"

namespace netmaster::eval {

namespace {

/// Derives a ComparisonRow from one fleet cell and the user's baseline
/// reference report.
ComparisonRow cell_row(const FleetCell& cell,
                       const sim::SimReport& baseline) {
  ComparisonRow row;
  row.policy = cell.policy;
  row.report = cell.report;
  row.energy_saving = cell.energy_saving;
  row.radio_on_fraction = cell.radio_on_fraction;
  auto ratio = [](double v, double base) {
    return base > 0.0 ? v / base : 0.0;
  };
  row.down_rate_ratio =
      ratio(row.report.avg_down_rate_kbps, baseline.avg_down_rate_kbps);
  row.up_rate_ratio =
      ratio(row.report.avg_up_rate_kbps, baseline.avg_up_rate_kbps);
  row.peak_down_ratio =
      ratio(row.report.peak_down_rate_kbps, baseline.peak_down_rate_kbps);
  row.peak_up_ratio =
      ratio(row.report.peak_up_rate_kbps, baseline.peak_up_rate_kbps);
  return row;
}

/// Folds one sweep point's single-policy column into the averaged
/// Fig. 8 / Fig. 9 metrics, in fixed user order. Failed cells are
/// skipped (and shrink the denominator) instead of aborting the sweep.
SweepPoint reduce_sweep_point(double x, const EvalSession& session,
                              const FleetReport& report) {
  SweepPoint point;
  point.x = x;
  std::size_t n = 0;
  for (std::size_t u = 0; u < session.num_users(); ++u) {
    const FleetCell& cell = report.at(u, 0);
    if (cell.failed) continue;
    ++n;
    const sim::SimReport& base = session.baseline(u);
    point.energy_saving += cell.energy_saving;
    if (base.radio_on_ms > 0) {
      point.radio_on_reduction += 1.0 - cell.radio_on_fraction;
    }
    if (base.avg_down_rate_kbps > 0.0) {
      point.bandwidth_increase +=
          cell.report.avg_down_rate_kbps / base.avg_down_rate_kbps - 1.0;
    }
    point.affected_fraction += cell.report.affected_fraction;
  }
  if (n > 0) {
    const auto count = static_cast<double>(n);
    point.energy_saving /= count;
    point.radio_on_reduction /= count;
    point.bandwidth_increase /= count;
    point.affected_fraction /= count;
  }
  return point;
}

PolicySpec baseline_spec() {
  return {"baseline",
          [](const UserTrace&) {
            return std::make_unique<policy::BaselinePolicy>();
          },
          {}};
}

}  // namespace

std::vector<VolunteerComparison> compare_all(const EvalSession& session,
                                             unsigned max_threads) {
  const auto suite = standard_policy_suite(session.config().netmaster);
  const FleetReport report = run_fleet(session, suite, max_threads);

  std::vector<VolunteerComparison> results(session.num_users());
  for (std::size_t u = 0; u < session.num_users(); ++u) {
    VolunteerComparison& cmp = results[u];
    cmp.user = session.user_id(u);
    cmp.profile_name = session.profile_name(u);
    if (!session.ok(u)) continue;  // rows stay empty; see FleetFailure
    cmp.baseline = session.baseline(u);
    cmp.rows.reserve(suite.size());
    for (std::size_t p = 0; p < suite.size(); ++p) {
      cmp.rows.push_back(cell_row(report.at(u, p), cmp.baseline));
    }
  }
  return results;
}

std::vector<VolunteerComparison> compare_all(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config, unsigned max_threads) {
  const EvalSession session(profiles, config, max_threads);
  return compare_all(session, max_threads);
}

VolunteerComparison compare_policies(const synth::UserProfile& profile,
                                     const ExperimentConfig& config) {
  const EvalSession session({profile}, config);
  if (!session.ok(0)) throw Error(session.prep_error(0));
  return std::move(compare_all(session).front());
}

std::vector<SweepPoint> delay_sweep(const EvalSession& session,
                                    const std::vector<double>& delays_s,
                                    unsigned max_threads) {
  return sweep(
      session, delays_s,
      [](double d) {
        std::vector<PolicySpec> specs;
        if (d <= 0.0) {
          specs.push_back(baseline_spec());
        } else {
          specs.push_back(
              {"delay-" + std::to_string(static_cast<int>(d)) + "s",
               [d](const UserTrace&) {
                 return std::make_unique<policy::DelayPolicy>(seconds(d));
               },
               {}});
        }
        return specs;
      },
      [&session](double d, const FleetReport& report) {
        return reduce_sweep_point(d, session, report);
      },
      max_threads);
}

std::vector<SweepPoint> delay_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& delays_s, const ExperimentConfig& config,
    unsigned max_threads) {
  const EvalSession session(profiles, config, max_threads);
  return delay_sweep(session, delays_s, max_threads);
}

std::vector<SweepPoint> batch_sweep(const EvalSession& session,
                                    const std::vector<std::size_t>& sizes,
                                    unsigned max_threads) {
  return sweep(
      session, sizes,
      [](std::size_t n) {
        std::vector<PolicySpec> specs;
        specs.push_back({"batch-" + std::to_string(n),
                         [n](const UserTrace&) {
                           return std::make_unique<policy::BatchPolicy>(n);
                         },
                         {}});
        return specs;
      },
      [&session](std::size_t n, const FleetReport& report) {
        return reduce_sweep_point(static_cast<double>(n), session, report);
      },
      max_threads);
}

std::vector<SweepPoint> batch_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<std::size_t>& sizes, const ExperimentConfig& config,
    unsigned max_threads) {
  const EvalSession session(profiles, config, max_threads);
  return batch_sweep(session, sizes, max_threads);
}

std::vector<ThresholdPoint> threshold_sweep(
    const EvalSession& session, const std::vector<double>& deltas,
    unsigned max_threads) {
  // The oracle report is δ-invariant: one fleet column per user,
  // computed once instead of once per sweep point.
  std::vector<PolicySpec> oracle_suite;
  oracle_suite.push_back(
      {"oracle",
       [profit = session.config().netmaster.profit](const UserTrace&) {
         return std::make_unique<policy::OraclePolicy>(profit);
       },
       {}});
  const FleetReport oracle = run_fleet(session, oracle_suite, max_threads);

  const policy::NetMasterConfig& base_nm = session.config().netmaster;
  return sweep(
      session, deltas,
      [&base_nm](double delta) {
        policy::NetMasterConfig nm = base_nm;
        nm.predictor.delta_weekday = delta;
        nm.predictor.delta_weekend = delta;
        nm.slot_powered_radio = true;  // the paper's Fig. 10c setting
        std::vector<PolicySpec> specs;
        specs.push_back(
            {"netmaster",
             [nm](const UserTrace& training) {
               return std::make_unique<policy::NetMasterPolicy>(training,
                                                                nm);
             },
             // Fig. 10c's y axis that lives on the policy, not in the
             // SimReport: the predictor's accuracy on the eval trace.
             [](const policy::Policy& p, const VolunteerTraces& traces) {
               const auto& netmaster =
                   static_cast<const policy::NetMasterPolicy&>(p);
               return mining::prediction_accuracy(netmaster.predictor(),
                                                  traces.eval);
             }});
        return specs;
      },
      [&session, &oracle](double delta, const FleetReport& report) {
        ThresholdPoint point;
        point.delta = delta;
        std::size_t n = 0;
        for (std::size_t u = 0; u < session.num_users(); ++u) {
          const FleetCell& cell = report.at(u, 0);
          const FleetCell& oracle_cell = oracle.at(u, 0);
          if (cell.failed || oracle_cell.failed) continue;
          ++n;
          point.accuracy += cell.probe_value;
          const sim::SimReport& base = session.baseline(u);
          const double saving = base.energy_j - cell.report.energy_j;
          const double oracle_saving =
              base.energy_j - oracle_cell.report.energy_j;
          if (oracle_saving > 0.0) {
            point.energy_saving +=
                std::max(saving, 0.0) / oracle_saving;
          }
        }
        if (n > 0) {
          point.accuracy /= static_cast<double>(n);
          point.energy_saving /= static_cast<double>(n);
        }
        return point;
      },
      max_threads);
}

std::vector<ThresholdPoint> threshold_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& deltas, const ExperimentConfig& config,
    unsigned max_threads) {
  const EvalSession session(profiles, config, max_threads);
  return threshold_sweep(session, deltas, max_threads);
}

namespace {

/// One knock-out variant of the ablation study.
struct AblationVariant {
  const char* name;
  bool prediction, duty, special;
};

}  // namespace

std::vector<AblationRow> ablation_study(const EvalSession& session,
                                        unsigned max_threads) {
  const std::vector<AblationVariant> variants = {
      {"full", true, true, true},
      {"no-prediction", false, true, true},
      {"no-duty-cycle", true, false, true},
      {"no-special-apps", true, true, false},
  };
  const policy::NetMasterConfig& base_nm = session.config().netmaster;
  return sweep(
      session, variants,
      [&base_nm](const AblationVariant& variant) {
        policy::NetMasterConfig nm = base_nm;
        nm.enable_prediction = variant.prediction;
        nm.enable_duty = variant.duty;
        nm.enable_special_apps = variant.special;
        std::vector<PolicySpec> specs;
        specs.push_back(
            {variant.name,
             [nm](const UserTrace& training) {
               return std::make_unique<policy::NetMasterPolicy>(training,
                                                                nm);
             },
             {}});
        return specs;
      },
      [&session](const AblationVariant& variant,
                 const FleetReport& report) {
        AblationRow row;
        row.variant = variant.name;
        std::size_t n = 0;
        for (std::size_t u = 0; u < session.num_users(); ++u) {
          const FleetCell& cell = report.at(u, 0);
          if (cell.failed) continue;
          ++n;
          row.energy_saving += cell.energy_saving;
          row.affected_fraction += cell.report.affected_fraction;
          row.mean_deferral_latency_s +=
              cell.report.mean_deferral_latency_s;
          row.wake_count += static_cast<double>(cell.report.wake_count);
        }
        if (n > 0) {
          const auto count = static_cast<double>(n);
          row.energy_saving /= count;
          row.affected_fraction /= count;
          row.mean_deferral_latency_s /= count;
          row.wake_count /= count;
        }
        return row;
      },
      max_threads);
}

std::vector<AblationRow> ablation_study(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config, unsigned max_threads) {
  const EvalSession session(profiles, config, max_threads);
  return ablation_study(session, max_threads);
}

std::vector<SolverAblationRow> solver_ablation_study(
    const EvalSession& session, unsigned max_threads) {
  const std::vector<PolicySpec> roster =
      solver_ablation_suite(session.config().netmaster);
  const FleetReport report = run_fleet(session, roster, max_threads);
  std::vector<SolverAblationRow> rows;
  rows.reserve(roster.size());
  for (std::size_t p = 0; p < roster.size(); ++p) {
    SolverAblationRow row;
    row.solver = roster[p].name;
    std::size_t n = 0;
    for (std::size_t u = 0; u < session.num_users(); ++u) {
      const FleetCell& cell = report.at(u, p);
      if (cell.failed) continue;
      ++n;
      row.energy_saving += cell.energy_saving;
      row.affected_fraction += cell.report.affected_fraction;
      row.mean_deferral_latency_s += cell.report.mean_deferral_latency_s;
    }
    if (n > 0) {
      const auto count = static_cast<double>(n);
      row.energy_saving /= count;
      row.affected_fraction /= count;
      row.mean_deferral_latency_s /= count;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<SolverAblationRow> solver_ablation_study(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config, unsigned max_threads) {
  const EvalSession session(profiles, config, max_threads);
  return solver_ablation_study(session, max_threads);
}

}  // namespace netmaster::eval
