#include "eval/experiments.hpp"

#include <algorithm>
#include <memory>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "engine/trace_index.hpp"
#include "mining/habits.hpp"
#include "policy/baseline.hpp"
#include "policy/batch.hpp"
#include "policy/delay.hpp"
#include "policy/delay_batch.hpp"
#include "policy/oracle.hpp"
#include "synth/generator.hpp"

namespace netmaster::eval {

namespace {

ComparisonRow make_row(const policy::Policy& p,
                       const engine::TraceIndex& index,
                       const sim::SimReport& baseline,
                       const RadioPowerParams& radio) {
  ComparisonRow row;
  row.policy = p.name();
  row.report = sim::account(index.trace(), p.run(index), radio);
  if (baseline.energy_j > 0.0) {
    row.energy_saving = 1.0 - row.report.energy_j / baseline.energy_j;
  }
  if (baseline.radio_on_ms > 0) {
    row.radio_on_fraction =
        static_cast<double>(row.report.radio_on_ms) /
        static_cast<double>(baseline.radio_on_ms);
  }
  auto ratio = [](double v, double base) {
    return base > 0.0 ? v / base : 0.0;
  };
  row.down_rate_ratio =
      ratio(row.report.avg_down_rate_kbps, baseline.avg_down_rate_kbps);
  row.up_rate_ratio =
      ratio(row.report.avg_up_rate_kbps, baseline.avg_up_rate_kbps);
  row.peak_down_ratio =
      ratio(row.report.peak_down_rate_kbps, baseline.peak_down_rate_kbps);
  row.peak_up_ratio =
      ratio(row.report.peak_up_rate_kbps, baseline.peak_up_rate_kbps);
  return row;
}

/// Per-profile state every sweep point replays against: the train/eval
/// split, the evaluation-trace index, and the baseline reference report.
/// Built once per sweep so the points only pay for their own policy
/// runs, not for regenerating traces.
struct SharedProfiles {
  std::vector<VolunteerTraces> traces;
  std::vector<std::unique_ptr<engine::TraceIndex>> index;
  std::vector<sim::SimReport> baseline;
};

SharedProfiles prepare_shared(const std::vector<synth::UserProfile>& profiles,
                              const ExperimentConfig& config) {
  SharedProfiles shared;
  const std::size_t n = profiles.size();
  shared.traces.resize(n);
  shared.index.resize(n);
  shared.baseline.resize(n);
  const RadioPowerParams& radio = config.netmaster.profit.radio;
  parallel_for(n, [&](std::size_t i) {
    shared.traces[i] = make_traces(profiles[i], config);
    shared.index[i] =
        std::make_unique<engine::TraceIndex>(shared.traces[i].eval);
    const policy::BaselinePolicy baseline;
    shared.baseline[i] = sim::account(shared.traces[i].eval,
                                      baseline.run(*shared.index[i]), radio);
  });
  return shared;
}

}  // namespace

VolunteerTraces make_traces(const synth::UserProfile& profile,
                            const ExperimentConfig& config) {
  NM_REQUIRE(config.train_days > 0 && config.eval_days > 0,
             "train/eval day counts must be positive");
  NM_REQUIRE(config.train_days % 7 == 0,
             "train_days must be whole weeks to keep the weekday/weekend "
             "regimes aligned between training and evaluation");
  const int total = config.train_days + config.eval_days;
  const UserTrace full =
      synth::generate_trace(profile, total, config.seed);
  return {full.slice_days(0, config.train_days),
          full.slice_days(config.train_days, config.eval_days)};
}

VolunteerComparison compare_policies(const synth::UserProfile& profile,
                                     const ExperimentConfig& config) {
  const VolunteerTraces traces = make_traces(profile, config);
  const engine::TraceIndex index(traces.eval);
  const RadioPowerParams& radio = config.netmaster.profit.radio;

  VolunteerComparison result;
  result.user = profile.id;
  result.profile_name = profile.name;

  const policy::BaselinePolicy baseline;
  result.baseline =
      sim::account(traces.eval, baseline.run(index), radio);

  std::vector<std::unique_ptr<policy::Policy>> policies;
  policies.push_back(std::make_unique<policy::OraclePolicy>(
      config.netmaster.profit));
  policies.push_back(std::make_unique<policy::NetMasterPolicy>(
      traces.training, config.netmaster));
  policies.push_back(
      std::make_unique<policy::DelayBatchPolicy>(seconds(10)));
  policies.push_back(
      std::make_unique<policy::DelayBatchPolicy>(seconds(20)));
  policies.push_back(
      std::make_unique<policy::DelayBatchPolicy>(seconds(60)));

  result.rows.push_back(
      make_row(baseline, index, result.baseline, radio));
  for (const auto& p : policies) {
    result.rows.push_back(make_row(*p, index, result.baseline, radio));
  }
  return result;
}

std::vector<VolunteerComparison> compare_all(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config) {
  std::vector<VolunteerComparison> results(profiles.size());
  parallel_for(profiles.size(), [&](std::size_t i) {
    results[i] = compare_policies(profiles[i], config);
  });
  return results;
}

namespace {

/// Runs one parameterized policy over every shared profile and averages
/// the sweep metrics.
template <typename MakePolicy>
SweepPoint sweep_point(double x, const SharedProfiles& shared,
                       const ExperimentConfig& config,
                       MakePolicy&& make_policy) {
  SweepPoint point;
  point.x = x;
  const RadioPowerParams& radio = config.netmaster.profit.radio;
  for (std::size_t i = 0; i < shared.index.size(); ++i) {
    const sim::SimReport& base = shared.baseline[i];
    const auto p = make_policy();
    const sim::SimReport rep = sim::account(
        shared.traces[i].eval, p->run(*shared.index[i]), radio);

    if (base.energy_j > 0.0) {
      point.energy_saving += 1.0 - rep.energy_j / base.energy_j;
    }
    if (base.radio_on_ms > 0) {
      point.radio_on_reduction +=
          1.0 - static_cast<double>(rep.radio_on_ms) /
                    static_cast<double>(base.radio_on_ms);
    }
    if (base.avg_down_rate_kbps > 0.0) {
      point.bandwidth_increase +=
          rep.avg_down_rate_kbps / base.avg_down_rate_kbps - 1.0;
    }
    point.affected_fraction += rep.affected_fraction;
  }
  const auto n = static_cast<double>(shared.index.size());
  point.energy_saving /= n;
  point.radio_on_reduction /= n;
  point.bandwidth_increase /= n;
  point.affected_fraction /= n;
  return point;
}

}  // namespace

std::vector<SweepPoint> delay_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& delays_s, const ExperimentConfig& config) {
  const SharedProfiles shared = prepare_shared(profiles, config);
  std::vector<SweepPoint> points(delays_s.size());
  parallel_for(delays_s.size(), [&](std::size_t i) {
    const double d = delays_s[i];
    if (d <= 0.0) {
      points[i] = sweep_point(d, shared, config, [] {
        return std::make_unique<policy::BaselinePolicy>();
      });
    } else {
      points[i] = sweep_point(d, shared, config, [d] {
        return std::make_unique<policy::DelayPolicy>(seconds(d));
      });
    }
  });
  return points;
}

std::vector<SweepPoint> batch_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<std::size_t>& sizes,
    const ExperimentConfig& config) {
  const SharedProfiles shared = prepare_shared(profiles, config);
  std::vector<SweepPoint> points(sizes.size());
  parallel_for(sizes.size(), [&](std::size_t i) {
    const std::size_t n = sizes[i];
    points[i] =
        sweep_point(static_cast<double>(n), shared, config, [n] {
          return std::make_unique<policy::BatchPolicy>(n);
        });
  });
  return points;
}

std::vector<ThresholdPoint> threshold_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& deltas, const ExperimentConfig& config) {
  const SharedProfiles shared = prepare_shared(profiles, config);
  const RadioPowerParams& radio = config.netmaster.profit.radio;

  // The oracle report is δ-invariant: compute it once per profile
  // instead of once per sweep point.
  std::vector<sim::SimReport> oracle_reports(profiles.size());
  parallel_for(profiles.size(), [&](std::size_t i) {
    const policy::OraclePolicy oracle(config.netmaster.profit);
    oracle_reports[i] = sim::account(shared.traces[i].eval,
                                     oracle.run(*shared.index[i]), radio);
  });

  std::vector<ThresholdPoint> points(deltas.size());
  parallel_for(deltas.size(), [&](std::size_t i) {
    ThresholdPoint point;
    point.delta = deltas[i];
    for (std::size_t u = 0; u < profiles.size(); ++u) {
      const VolunteerTraces& traces = shared.traces[u];

      policy::NetMasterConfig nm = config.netmaster;
      nm.predictor.delta_weekday = deltas[i];
      nm.predictor.delta_weekend = deltas[i];
      nm.slot_powered_radio = true;  // the paper's Fig. 10c setting
      const policy::NetMasterPolicy netmaster(traces.training, nm);
      point.accuracy +=
          mining::prediction_accuracy(netmaster.predictor(), traces.eval);

      const sim::SimReport& base = shared.baseline[u];
      const sim::SimReport rep = sim::account(
          traces.eval, netmaster.run(*shared.index[u]), radio);
      const sim::SimReport& orep = oracle_reports[u];

      const double saving = base.energy_j - rep.energy_j;
      const double oracle_saving = base.energy_j - orep.energy_j;
      if (oracle_saving > 0.0) {
        point.energy_saving += std::max(saving, 0.0) / oracle_saving;
      }
    }
    const auto n = static_cast<double>(profiles.size());
    point.accuracy /= n;
    point.energy_saving /= n;
    points[i] = point;
  });
  return points;
}

std::vector<AblationRow> ablation_study(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config) {
  struct Variant {
    const char* name;
    bool prediction, duty, special;
  };
  const Variant variants[] = {
      {"full", true, true, true},
      {"no-prediction", false, true, true},
      {"no-duty-cycle", true, false, true},
      {"no-special-apps", true, true, false},
  };

  const SharedProfiles shared = prepare_shared(profiles, config);
  const RadioPowerParams& radio = config.netmaster.profit.radio;

  std::vector<AblationRow> rows(std::size(variants));
  parallel_for(std::size(variants), [&](std::size_t v) {
    const Variant& variant = variants[v];
    AblationRow row;
    row.variant = variant.name;
    for (std::size_t u = 0; u < profiles.size(); ++u) {
      const VolunteerTraces& traces = shared.traces[u];
      policy::NetMasterConfig nm = config.netmaster;
      nm.enable_prediction = variant.prediction;
      nm.enable_duty = variant.duty;
      nm.enable_special_apps = variant.special;
      const policy::NetMasterPolicy p(traces.training, nm);
      const sim::SimReport& base = shared.baseline[u];
      const sim::SimReport rep = sim::account(
          traces.eval, p.run(*shared.index[u]), radio);
      if (base.energy_j > 0.0) {
        row.energy_saving += 1.0 - rep.energy_j / base.energy_j;
      }
      row.affected_fraction += rep.affected_fraction;
      row.mean_deferral_latency_s += rep.mean_deferral_latency_s;
      row.wake_count += static_cast<double>(rep.wake_count);
    }
    const auto n = static_cast<double>(profiles.size());
    row.energy_saving /= n;
    row.affected_fraction /= n;
    row.mean_deferral_latency_s /= n;
    row.wake_count /= n;
    rows[v] = row;
  });
  return rows;
}

}  // namespace netmaster::eval
