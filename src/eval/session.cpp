#include "eval/session.hpp"

#include <utility>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "obs/span.hpp"
#include "policy/baseline.hpp"
#include "synth/generator.hpp"

namespace netmaster::eval {

VolunteerTraces make_traces(const synth::UserProfile& profile,
                            const ExperimentConfig& config) {
  NM_REQUIRE(config.train_days > 0 && config.eval_days > 0,
             "train/eval day counts must be positive");
  NM_REQUIRE(config.train_days % 7 == 0,
             "train_days must be whole weeks to keep the weekday/weekend "
             "regimes aligned between training and evaluation");
  const int total = config.train_days + config.eval_days;
  const UserTrace full =
      synth::generate_trace(profile, total, config.seed);
  return {full.slice_days(0, config.train_days),
          full.slice_days(config.train_days, config.eval_days)};
}

VolunteerTraces make_drifting_traces(const synth::UserProfile& profile,
                                     const ExperimentConfig& config,
                                     const synth::DriftSpec& spec) {
  NM_REQUIRE(config.train_days > 0 && config.eval_days > 0,
             "train/eval day counts must be positive");
  NM_REQUIRE(config.train_days % 7 == 0,
             "train_days must be whole weeks to keep the weekday/weekend "
             "regimes aligned between training and evaluation");
  // The spec's onset is eval-relative; generation runs in absolute
  // days over the whole train+eval horizon.
  synth::DriftSpec absolute = spec;
  absolute.onset_day = spec.onset_day + config.train_days;
  NM_REQUIRE(absolute.onset_day >= 0,
             "drift onset must not precede the generated horizon");
  const int total = config.train_days + config.eval_days;
  const UserTrace full =
      synth::generate_drifting_trace(profile, absolute, total, config.seed);
  return {full.slice_days(0, config.train_days),
          full.slice_days(config.train_days, config.eval_days)};
}

EvalSession::EvalSession(const std::vector<synth::UserProfile>& profiles,
                         const ExperimentConfig& config,
                         unsigned max_threads)
    : config_(config),
      store_(std::make_unique<UserStore>(config.store)),
      users_(profiles.size()) {
  store_->resize(profiles.size());
  parallel_for(profiles.size(), [&](std::size_t u) {
    const obs::SpanScope gen_span("fleet.trace_gen");
    users_[u].id = profiles[u].id;
    users_[u].profile_name = profiles[u].name;
    try {
      store_->admit(u, make_traces(profiles[u], config_));
    } catch (const std::exception& e) {
      users_[u].prep_error = e.what();
    }
  }, max_threads);
  prepare(max_threads);
}

EvalSession::EvalSession(std::vector<VolunteerTraces> volunteers,
                         const ExperimentConfig& config,
                         unsigned max_threads)
    : config_(config),
      store_(std::make_unique<UserStore>(config.store)),
      users_(volunteers.size()) {
  store_->resize(volunteers.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    users_[u].id = volunteers[u].eval.user;
    users_[u].profile_name = "volunteer";
    try {
      store_->admit(u, std::move(volunteers[u]));
    } catch (const std::exception& e) {
      users_[u].prep_error = e.what();
    }
  }
  prepare(max_threads);
}

void EvalSession::prepare(unsigned max_threads) {
  const RadioPowerParams& radio = config_.netmaster.profit.radio;
  parallel_for(users_.size(), [&](std::size_t u) {
    UserState& state = users_[u];
    if (!state.prep_error.empty()) return;
    const obs::SpanScope span("fleet.prepare");
    try {
      // Pin the traces for the whole preparation: the index copies the
      // eval trace into the per-user arena and is self-contained from
      // then on; the pin's lifetime guards index.trace() so a later
      // eviction is caught instead of dereferenced.
      const UserStore::Pin pin = store_->pin(u);
      pin.eval().validate();
      state.arena = std::make_unique<mem::Arena>();
      state.index = std::make_unique<engine::TraceIndex>(
          pin.eval(), *state.arena, pin.lifetime());
      const policy::BaselinePolicy base;
      const obs::SpanScope account_span("fleet.account");
      state.baseline =
          sim::account(pin.eval(), base.run(*state.index), radio);
    } catch (const std::exception& e) {
      state.prep_error = e.what();
    }
  }, max_threads);
}

std::size_t EvalSession::num_ok() const {
  std::size_t n = 0;
  for (const UserState& state : users_) {
    if (state.prep_error.empty()) ++n;
  }
  return n;
}

const engine::TraceIndex& EvalSession::index(std::size_t u) const {
  const UserState& state = user(u);
  NM_REQUIRE(state.index != nullptr,
             "EvalSession::index on a failed user — check ok(u) first");
  return *state.index;
}

const sim::SimReport& EvalSession::baseline(std::size_t u) const {
  const UserState& state = user(u);
  NM_REQUIRE(state.prep_error.empty(),
             "EvalSession::baseline on a failed user — check ok(u) first");
  return state.baseline;
}

std::size_t EvalSession::arena_bytes() const {
  std::size_t total = 0;
  for (const UserState& state : users_) {
    if (state.arena) total += state.arena->bytes_reserved();
  }
  return total;
}

const EvalSession::UserState& EvalSession::user(std::size_t u) const {
  NM_REQUIRE(u < users_.size(), "EvalSession user index out of range");
  return users_[u];
}

}  // namespace netmaster::eval
