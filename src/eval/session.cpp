#include "eval/session.hpp"

#include <utility>

#include "common/error.hpp"
#include "obs/span.hpp"
#include "policy/baseline.hpp"
#include "synth/generator.hpp"

namespace netmaster::eval {

VolunteerTraces make_traces(const synth::UserProfile& profile,
                            const ExperimentConfig& config) {
  NM_REQUIRE(config.train_days > 0 && config.eval_days > 0,
             "train/eval day counts must be positive");
  NM_REQUIRE(config.train_days % 7 == 0,
             "train_days must be whole weeks to keep the weekday/weekend "
             "regimes aligned between training and evaluation");
  const int total = config.train_days + config.eval_days;
  const UserTrace full =
      synth::generate_trace(profile, total, config.seed);
  return {full.slice_days(0, config.train_days),
          full.slice_days(config.train_days, config.eval_days)};
}

VolunteerTraces make_drifting_traces(const synth::UserProfile& profile,
                                     const ExperimentConfig& config,
                                     const synth::DriftSpec& spec) {
  NM_REQUIRE(config.train_days > 0 && config.eval_days > 0,
             "train/eval day counts must be positive");
  NM_REQUIRE(config.train_days % 7 == 0,
             "train_days must be whole weeks to keep the weekday/weekend "
             "regimes aligned between training and evaluation");
  // The spec's onset is eval-relative; generation runs in absolute
  // days over the whole train+eval horizon.
  synth::DriftSpec absolute = spec;
  absolute.onset_day = spec.onset_day + config.train_days;
  NM_REQUIRE(absolute.onset_day >= 0,
             "drift onset must not precede the generated horizon");
  const int total = config.train_days + config.eval_days;
  const UserTrace full =
      synth::generate_drifting_trace(profile, absolute, total, config.seed);
  return {full.slice_days(0, config.train_days),
          full.slice_days(config.train_days, config.eval_days)};
}

EvalSession::EvalSession(const std::vector<synth::UserProfile>& profiles,
                         const ExperimentConfig& config,
                         unsigned max_threads)
    : config_(config),
      store_(std::make_unique<UserStore>(config.store)),
      users_(profiles.size()) {
  store_->resize(profiles.size());
  // Per-user trace_gen -> prepare chains instead of two barriered
  // parallel_for stages: a user whose synthesis finishes early starts
  // preparing immediately, it never waits for the slowest generator.
  jobs::TaskGraph graph;
  for (std::size_t u = 0; u < users_.size(); ++u) {
    schedule_user_build(graph, u, profiles[u]);
  }
  jobs::run_graph(graph, max_threads);
}

EvalSession::EvalSession(std::vector<VolunteerTraces> volunteers,
                         const ExperimentConfig& config,
                         unsigned max_threads)
    : config_(config),
      store_(std::make_unique<UserStore>(config.store)),
      users_(volunteers.size()) {
  store_->resize(volunteers.size());
  // Admission consumes the traces, so it stays inline; only the
  // per-user preparation fans out onto the graph.
  for (std::size_t u = 0; u < users_.size(); ++u) {
    users_[u].id = volunteers[u].eval.user;
    users_[u].profile_name = "volunteer";
    try {
      store_->admit(u, std::move(volunteers[u]));
    } catch (const std::exception& e) {
      users_[u].prep_error = e.what();
    }
  }
  jobs::TaskGraph graph;
  for (std::size_t u = 0; u < users_.size(); ++u) {
    schedule_user_prepare(graph, u);
  }
  jobs::run_graph(graph, max_threads);
}

EvalSession::EvalSession(DeferBuild,
                         const std::vector<synth::UserProfile>& profiles,
                         const ExperimentConfig& config,
                         jobs::TaskGraph& graph,
                         std::vector<jobs::TaskId>& prepare_tasks)
    : config_(config),
      store_(std::make_unique<UserStore>(config.store)),
      users_(profiles.size()) {
  store_->resize(profiles.size());
  prepare_tasks.reserve(prepare_tasks.size() + users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    prepare_tasks.push_back(schedule_user_build(graph, u, profiles[u]));
  }
}

EvalSession::EvalSession(DeferBuild, std::vector<VolunteerTraces> volunteers,
                         const ExperimentConfig& config,
                         jobs::TaskGraph& graph,
                         std::vector<jobs::TaskId>& prepare_tasks)
    : config_(config),
      store_(std::make_unique<UserStore>(config.store)),
      users_(volunteers.size()) {
  store_->resize(volunteers.size());
  prepare_tasks.reserve(prepare_tasks.size() + users_.size());
  for (std::size_t u = 0; u < users_.size(); ++u) {
    users_[u].id = volunteers[u].eval.user;
    users_[u].profile_name = "volunteer";
    try {
      store_->admit(u, std::move(volunteers[u]));
    } catch (const std::exception& e) {
      users_[u].prep_error = e.what();
    }
    prepare_tasks.push_back(schedule_user_prepare(graph, u));
  }
}

jobs::TaskId EvalSession::schedule_user_build(
    jobs::TaskGraph& graph, std::size_t u,
    const synth::UserProfile& profile) {
  // The tasks capture `this` and `&profile`: the session is built in
  // place and the deferred-build contract (session.hpp) keeps both
  // alive and unmoved until the graph runs.
  const jobs::TaskId gen = graph.add([this, u, &profile] {
    const obs::SpanScope gen_span("fleet.trace_gen");
    users_[u].id = profile.id;
    users_[u].profile_name = profile.name;
    try {
      store_->admit(u, make_traces(profile, config_));
    } catch (const std::exception& e) {
      users_[u].prep_error = e.what();
    }
  });
  const jobs::TaskId prep = graph.add([this, u] { prepare_user(u); });
  graph.add_dependency(gen, prep);
  return prep;
}

jobs::TaskId EvalSession::schedule_user_prepare(jobs::TaskGraph& graph,
                                                std::size_t u) {
  return graph.add([this, u] { prepare_user(u); });
}

void EvalSession::prepare_user(std::size_t u) {
  UserState& state = users_[u];
  if (!state.prep_error.empty()) return;
  const obs::SpanScope span("fleet.prepare");
  try {
    // Pin the traces for the whole preparation: the index copies the
    // eval trace into the per-user arena and is self-contained from
    // then on; the pin's lifetime guards index.trace() so a later
    // eviction is caught instead of dereferenced.
    const UserStore::Pin pin = store_->pin(u);
    pin.eval().validate();
    state.arena = std::make_unique<mem::Arena>();
    state.index = std::make_unique<engine::TraceIndex>(
        pin.eval(), *state.arena, pin.lifetime());
    const policy::BaselinePolicy base;
    const obs::SpanScope account_span("fleet.account");
    const RadioModel& radio = config_.netmaster.profit.radio;
    state.baseline =
        sim::account(pin.eval(), base.run(*state.index), radio);
  } catch (const std::exception& e) {
    state.prep_error = e.what();
  }
}

std::size_t EvalSession::num_ok() const {
  std::size_t n = 0;
  for (const UserState& state : users_) {
    if (state.prep_error.empty()) ++n;
  }
  return n;
}

const engine::TraceIndex& EvalSession::index(std::size_t u) const {
  const UserState& state = user(u);
  NM_REQUIRE(state.index != nullptr,
             "EvalSession::index on a failed user — check ok(u) first");
  return *state.index;
}

const sim::SimReport& EvalSession::baseline(std::size_t u) const {
  const UserState& state = user(u);
  NM_REQUIRE(state.prep_error.empty(),
             "EvalSession::baseline on a failed user — check ok(u) first");
  return state.baseline;
}

std::size_t EvalSession::arena_bytes() const {
  std::size_t total = 0;
  for (const UserState& state : users_) {
    if (state.arena) total += state.arena->bytes_reserved();
  }
  return total;
}

const EvalSession::UserState& EvalSession::user(std::size_t u) const {
  NM_REQUIRE(u < users_.size(), "EvalSession user index out of range");
  return users_[u];
}

}  // namespace netmaster::eval
