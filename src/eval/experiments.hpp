// Experiment runners for the §VI evaluation — one function per figure
// family, shared by the bench binaries, the examples, and the
// integration tests. All runners are deterministic in their seeds and
// parallelize across volunteers / sweep points.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/profiles.hpp"

namespace netmaster::eval {

/// Common experiment setup: train on the first `train_days`, evaluate
/// on the following `eval_days`. Both default to whole weeks so the
/// weekday/weekend regimes stay aligned between training and
/// evaluation.
struct ExperimentConfig {
  int train_days = 14;
  int eval_days = 7;
  std::uint64_t seed = 42;
  policy::NetMasterConfig netmaster;
};

/// Train/eval split of one synthetic volunteer.
struct VolunteerTraces {
  UserTrace training;
  UserTrace eval;
};

/// Generates and splits the traces for one profile.
VolunteerTraces make_traces(const synth::UserProfile& profile,
                            const ExperimentConfig& config);

/// One policy's results on one volunteer, with baseline-relative
/// derived metrics.
struct ComparisonRow {
  std::string policy;
  sim::SimReport report;
  double energy_saving = 0.0;      ///< 1 − E/E_baseline
  double radio_on_fraction = 0.0;  ///< radio-on / baseline radio-on
  double down_rate_ratio = 0.0;    ///< avg down kbps / baseline
  double up_rate_ratio = 0.0;
  double peak_down_ratio = 0.0;
  double peak_up_ratio = 0.0;
};

/// Fig. 7 experiment for one volunteer: baseline, oracle, NetMaster,
/// delay&batch at 10/20/60 s.
struct VolunteerComparison {
  UserId user = 0;
  std::string profile_name;
  sim::SimReport baseline;
  std::vector<ComparisonRow> rows;
};

VolunteerComparison compare_policies(const synth::UserProfile& profile,
                                     const ExperimentConfig& config);

/// Runs compare_policies for every profile, in parallel.
std::vector<VolunteerComparison> compare_all(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config);

/// One point of the Fig. 8 / Fig. 9 sweeps, averaged over profiles.
struct SweepPoint {
  double x = 0.0;                   ///< delay seconds / batch size
  double energy_saving = 0.0;       ///< 1 − E/E_baseline
  double radio_on_reduction = 0.0;  ///< 1 − radio_on/baseline radio_on
  double bandwidth_increase = 0.0;  ///< avg rate / baseline − 1
  double affected_fraction = 0.0;   ///< affected usages / usages
};

/// Fig. 8: fixed-interval delay sweep.
std::vector<SweepPoint> delay_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& delays_s, const ExperimentConfig& config);

/// Fig. 9: batch-size sweep.
std::vector<SweepPoint> batch_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<std::size_t>& sizes, const ExperimentConfig& config);

/// One point of the Fig. 10c prediction-threshold sweep.
struct ThresholdPoint {
  double delta = 0.0;
  double accuracy = 0.0;       ///< usages inside predicted slots
  double energy_saving = 0.0;  ///< saving / oracle saving
};

/// Fig. 10c: δ sweep (same δ applied to weekdays and weekends so the
/// x axis matches the paper's single-threshold plot).
std::vector<ThresholdPoint> threshold_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& deltas, const ExperimentConfig& config);

/// Component ablation (DESIGN.md's knock-out study): the full system
/// and each component disabled in turn, averaged over profiles.
struct AblationRow {
  std::string variant;
  double energy_saving = 0.0;
  double affected_fraction = 0.0;
  double mean_deferral_latency_s = 0.0;
  double wake_count = 0.0;
};

std::vector<AblationRow> ablation_study(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config);

}  // namespace netmaster::eval
