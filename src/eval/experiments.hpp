// Experiment runners for the §VI evaluation — one function per figure
// family, shared by the bench binaries, the examples, and the
// integration tests. All runners are deterministic in their seeds and
// thread counts, and every one of them is a reduction over fleet runs:
// the per-user traces/indexes/baselines live in an eval::EvalSession
// (see session.hpp) and the replay grid goes through eval::run_fleet
// via the generic sweep driver (see sweep.hpp). Each runner has two
// overloads: a convenience form that builds a throwaway session from
// profiles, and a session form that reuses a cached session so
// consecutive figures or sweep invocations pay trace synthesis and
// indexing exactly once.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eval/session.hpp"
#include "sim/accounting.hpp"
#include "synth/profiles.hpp"

namespace netmaster::eval {

/// One policy's results on one volunteer, with baseline-relative
/// derived metrics.
struct ComparisonRow {
  std::string policy;
  sim::SimReport report;
  double energy_saving = 0.0;      ///< 1 − E/E_baseline
  double radio_on_fraction = 0.0;  ///< radio-on / baseline radio-on
  double down_rate_ratio = 0.0;    ///< avg down kbps / baseline
  double up_rate_ratio = 0.0;
  double peak_down_ratio = 0.0;
  double peak_up_ratio = 0.0;
};

/// Fig. 7 experiment for one volunteer: the standard_policy_suite
/// roster (baseline, oracle, NetMaster, delay&batch at 10/20/60 s).
/// A volunteer whose preparation failed has empty `rows`.
struct VolunteerComparison {
  UserId user = 0;
  std::string profile_name;
  sim::SimReport baseline;
  std::vector<ComparisonRow> rows;
};

/// Throws netmaster::Error when the volunteer's traces cannot be
/// prepared (the single-user form has no fleet to isolate into).
VolunteerComparison compare_policies(const synth::UserProfile& profile,
                                     const ExperimentConfig& config);

/// Runs the comparison suite for every profile through one fleet grid.
std::vector<VolunteerComparison> compare_all(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config, unsigned max_threads = 0);
std::vector<VolunteerComparison> compare_all(const EvalSession& session,
                                             unsigned max_threads = 0);

/// One point of the Fig. 8 / Fig. 9 sweeps, averaged over the users
/// whose cells completed (all of them on a healthy fleet).
struct SweepPoint {
  double x = 0.0;                   ///< delay seconds / batch size
  double energy_saving = 0.0;       ///< 1 − E/E_baseline
  double radio_on_reduction = 0.0;  ///< 1 − radio_on/baseline radio_on
  double bandwidth_increase = 0.0;  ///< avg rate / baseline − 1
  double affected_fraction = 0.0;   ///< affected usages / usages
};

/// Fig. 8: fixed-interval delay sweep.
std::vector<SweepPoint> delay_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& delays_s, const ExperimentConfig& config,
    unsigned max_threads = 0);
std::vector<SweepPoint> delay_sweep(const EvalSession& session,
                                    const std::vector<double>& delays_s,
                                    unsigned max_threads = 0);

/// Fig. 9: batch-size sweep.
std::vector<SweepPoint> batch_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<std::size_t>& sizes, const ExperimentConfig& config,
    unsigned max_threads = 0);
std::vector<SweepPoint> batch_sweep(const EvalSession& session,
                                    const std::vector<std::size_t>& sizes,
                                    unsigned max_threads = 0);

/// One point of the Fig. 10c prediction-threshold sweep.
struct ThresholdPoint {
  double delta = 0.0;
  double accuracy = 0.0;       ///< usages inside predicted slots
  double energy_saving = 0.0;  ///< saving / oracle saving
};

/// Fig. 10c: δ sweep (same δ applied to weekdays and weekends so the
/// x axis matches the paper's single-threshold plot).
std::vector<ThresholdPoint> threshold_sweep(
    const std::vector<synth::UserProfile>& profiles,
    const std::vector<double>& deltas, const ExperimentConfig& config,
    unsigned max_threads = 0);
std::vector<ThresholdPoint> threshold_sweep(
    const EvalSession& session, const std::vector<double>& deltas,
    unsigned max_threads = 0);

/// Component ablation (DESIGN.md's knock-out study): the full system
/// and each component disabled in turn, averaged over profiles.
struct AblationRow {
  std::string variant;
  double energy_saving = 0.0;
  double affected_fraction = 0.0;
  double mean_deferral_latency_s = 0.0;
  double wake_count = 0.0;
};

std::vector<AblationRow> ablation_study(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config, unsigned max_threads = 0);
std::vector<AblationRow> ablation_study(const EvalSession& session,
                                        unsigned max_threads = 0);

/// Solver ablation: end-to-end NetMaster metrics per SinKnap backend
/// (the eval::solver_ablation_suite roster replayed as one fleet grid),
/// averaged over the users whose cells completed. Quantifies what the
/// FPTAS buys over per-slot greedy on real traces — and what auto's
/// exact upgrades change (nothing, on byte-scale capacities).
struct SolverAblationRow {
  std::string solver;  ///< roster name, e.g. "netmaster[fptas]"
  double energy_saving = 0.0;
  double affected_fraction = 0.0;
  double mean_deferral_latency_s = 0.0;
};

std::vector<SolverAblationRow> solver_ablation_study(
    const std::vector<synth::UserProfile>& profiles,
    const ExperimentConfig& config, unsigned max_threads = 0);
std::vector<SolverAblationRow> solver_ablation_study(
    const EvalSession& session, unsigned max_threads = 0);

}  // namespace netmaster::eval
