// EvalSession — the cached per-user state every §VI experiment replays
// against: the train/eval trace split (held in a UserStore, possibly
// spilled to disk), the engine::TraceIndex over the evaluation trace
// (arena-backed, self-contained), and the baseline reference SimReport.
// Built once (in parallel), immutable afterwards, and shared by
// reference across every sweep point and policy cell, so a 12-point
// sweep pays trace synthesis and indexing exactly once instead of 12
// times.
//
// Memory model (ROADMAP item 2): each user's replay working set lives
// in one mem::Arena owned by the session; the AoS traces live in the
// UserStore, which — when a cache cap is configured — keeps only the
// hot users hydrated and rehydrates the rest from compact UserBlob
// spill files on demand. Serialization is lossless, so fleet results
// are bit-for-bit identical whatever the cap.
//
// Per-user preparation failures (a poisoned trace, a baseline that
// cannot replay) are captured in the session instead of thrown: the
// user is marked not-ok and every fleet run over the session reports
// that row as an isolated FleetFailure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/trace_index.hpp"
#include "eval/user_store.hpp"
#include "jobs/job_system.hpp"
#include "policy/netmaster.hpp"
#include "sim/accounting.hpp"
#include "synth/drift.hpp"
#include "synth/profiles.hpp"
#include "trace/trace.hpp"

namespace netmaster::eval {

/// Common experiment setup: train on the first `train_days`, evaluate
/// on the following `eval_days`. Both default to whole weeks so the
/// weekday/weekend regimes stay aligned between training and
/// evaluation.
struct ExperimentConfig {
  int train_days = 14;
  int eval_days = 7;
  std::uint64_t seed = 42;
  policy::NetMasterConfig netmaster;
  /// Trace cache knobs; the default (cap 0) keeps every user resident.
  UserStoreConfig store;
};

/// Generates and splits the traces for one profile.
VolunteerTraces make_traces(const synth::UserProfile& profile,
                            const ExperimentConfig& config);

/// Like make_traces, but the user's habits drift per `spec` over the
/// generated horizon. `spec.onset_day` is taken relative to the start
/// of the *evaluation* window (onset 0 = the first evaluated day), so
/// training stays stationary for non-negative onsets and a mined model
/// goes stale mid-evaluation — the scenario the drift detector exists
/// for. A kNone spec reproduces make_traces bit for bit.
VolunteerTraces make_drifting_traces(const synth::UserProfile& profile,
                                     const ExperimentConfig& config,
                                     const synth::DriftSpec& spec);

/// Tag selecting the graph-native deferred-build constructors: the
/// session schedules its per-user build chains into a caller-owned
/// TaskGraph instead of running them, so callers (the fused run_fleet
/// path) can hang policy-cell tasks off each user's prepare task and
/// run everything as one graph with no stage barrier.
struct DeferBuild {};

/// Immutable per-user evaluation state shared across sweep points and
/// policy cells. Movable, non-copyable (it owns one TraceIndex and one
/// arena per user, plus the trace store).
class EvalSession {
 public:
  /// Synthesizes, splits, indexes and baseline-accounts every profile
  /// on the work-stealing pool as independent per-user
  /// trace_gen -> prepare chains. A profile whose preparation throws is
  /// marked failed (`ok(u)` false) — construction itself never throws
  /// on bad user data.
  EvalSession(const std::vector<synth::UserProfile>& profiles,
              const ExperimentConfig& config, unsigned max_threads = 0);

  /// Same, over pre-built (possibly recorded/corrupted) trace pairs.
  EvalSession(std::vector<VolunteerTraces> volunteers,
              const ExperimentConfig& config, unsigned max_threads = 0);

  /// Graph-native construction: appends each user's trace_gen ->
  /// prepare chain to `graph` without running it and returns the
  /// per-user *prepare* TaskIds (index u) for dependents. The session
  /// and `profiles` must stay alive and unmoved until the graph runs;
  /// every accessor except num_users()/config() is valid only after it
  /// completes.
  EvalSession(DeferBuild, const std::vector<synth::UserProfile>& profiles,
              const ExperimentConfig& config, jobs::TaskGraph& graph,
              std::vector<jobs::TaskId>& prepare_tasks);

  /// Graph-native volunteer construction: admission happens inline
  /// (it consumes the traces), the per-user prepare tasks land in
  /// `graph`. Same lifetime rules as the profile overload.
  EvalSession(DeferBuild, std::vector<VolunteerTraces> volunteers,
              const ExperimentConfig& config, jobs::TaskGraph& graph,
              std::vector<jobs::TaskId>& prepare_tasks);

  EvalSession(EvalSession&&) = default;
  EvalSession& operator=(EvalSession&&) = default;
  EvalSession(const EvalSession&) = delete;
  EvalSession& operator=(const EvalSession&) = delete;

  std::size_t num_users() const { return users_.size(); }
  const ExperimentConfig& config() const { return config_; }

  /// False when user u's preparation failed; `prep_error(u)` says why.
  bool ok(std::size_t u) const { return user(u).prep_error.empty(); }
  const std::string& prep_error(std::size_t u) const {
    return user(u).prep_error;
  }
  /// Number of users with usable state.
  std::size_t num_ok() const;

  UserId user_id(std::size_t u) const { return user(u).id; }
  const std::string& profile_name(std::size_t u) const {
    return user(u).profile_name;
  }
  /// Hydrated train/eval traces for user u. Returns a Pin: rehydrates
  /// from the spill file when the user is cold and keeps the traces
  /// alive while held. Pin once per cell, not per field access.
  UserStore::Pin traces(std::size_t u) const { return store_->pin(u); }
  /// The shared evaluation-trace index / baseline reference report.
  /// Contract: only valid when `ok(u)`.
  const engine::TraceIndex& index(std::size_t u) const;
  const sim::SimReport& baseline(std::size_t u) const;

  /// The trace cache (resident bytes, eviction counts — bench fodder).
  const UserStore& store() const { return *store_; }
  /// Total bytes reserved by the per-user replay arenas.
  std::size_t arena_bytes() const;

 private:
  struct UserState {
    UserId id = 0;
    std::string profile_name;
    std::unique_ptr<mem::Arena> arena;  ///< backs the index columns
    std::unique_ptr<engine::TraceIndex> index;
    sim::SimReport baseline;
    std::string prep_error;  ///< empty = usable
  };

  const UserState& user(std::size_t u) const;
  /// Appends user u's trace_gen task (synthesize + admit) followed by
  /// its prepare task to `graph`; returns the prepare TaskId.
  jobs::TaskId schedule_user_build(jobs::TaskGraph& graph, std::size_t u,
                                   const synth::UserProfile& profile);
  /// Appends user u's prepare task (validate, index, baseline) only.
  jobs::TaskId schedule_user_prepare(jobs::TaskGraph& graph, std::size_t u);
  /// The per-user prepare body: validate, build the arena-backed
  /// index, account the baseline. Never throws; failures land in
  /// prep_error.
  void prepare_user(std::size_t u);

  ExperimentConfig config_;
  std::unique_ptr<UserStore> store_;
  std::vector<UserState> users_;
};

}  // namespace netmaster::eval
