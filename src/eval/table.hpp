// ASCII table / CSV series formatting shared by benches and examples.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace netmaster::eval {

/// Column-aligned ASCII table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  void print(std::ostream& os) const;

  /// Fixed-precision numeric cell.
  static std::string num(double value, int precision = 3);
  /// Percentage cell ("12.3%").
  static std::string pct(double fraction, int precision = 1);

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes rows as CSV (no quoting; cells must not contain commas).
void print_csv(std::ostream& os, const std::vector<std::string>& headers,
               const std::vector<std::vector<std::string>>& rows);

}  // namespace netmaster::eval
