// Preset user archetypes and the standard app population.
//
// The presets stand in for the paper's study subjects: eight diverse
// users (ages 20–30, different professions per §III) for the motivation
// figures, and three "volunteers" for the §VI evaluation. Archetypes
// differ strongly in their hourly intensity shape (driving the low
// cross-user Pearson of Fig. 3) while each is internally regular
// (driving the high cross-day Pearson of Fig. 4).
#pragma once

#include <vector>

#include "synth/profiles.hpp"

namespace netmaster::synth {

/// The user archetypes available to experiments.
enum class Archetype {
  kOfficeWorker,    ///< 9-to-6 usage with lunch and evening peaks
  kStudent,         ///< bimodal daytime plus late-night usage
  kNightOwl,        ///< activity concentrated 21:00–02:00
  kCommuter,        ///< sharp morning/evening commute peaks
  kRetiree,         ///< gentle spread across the day
  kHeavyMessenger,  ///< IM-dominated, high intensity all waking hours
  kWeekendWarrior,  ///< light weekdays, heavy weekends
  kLightUser,       ///< sparse usage throughout
  kMediaStreamer,   ///< long evening media flows, periodic chunk fetches
  kPodcastCommuter, ///< commute listening over bulk episode downloads
};

/// The 23-app population used by all presets (matching the paper's
/// Fig. 5 population size). Usage weights here are generic; archetype
/// builders rescale or zero them so that, as in the paper, only a
/// handful of apps see both usage and network activity for any user.
std::vector<AppProfile> standard_app_population();

/// Builds a user of the given archetype with the standard apps.
UserProfile make_user(Archetype archetype, UserId id);

/// The 8-user §III study population (one of each archetype).
std::vector<UserProfile> study_population();

/// The 3-volunteer §VI evaluation population (office worker, student,
/// heavy messenger — spanning regular to chatty usage).
std::vector<UserProfile> volunteer_population();

/// A media streamer whose player fetches one chunk per `chunk_period`
/// of playback — the EStreamer burst-shaping knob. The media *bitrate*
/// is fixed: a coarser period means proportionally larger chunks, so
/// the same bytes arrive in fewer, bigger bursts and the radio pays
/// fewer promotion/tail cycles. make_user(kMediaStreamer, id) is the
/// 3-minute default.
UserProfile make_streamer(UserId id, DurationMs chunk_period);

/// Streaming-heavy population for the multi-radio figure: two media
/// streamers with different chunk shaping (3 min vs. 8 min — the
/// EStreamer tradeoff in one fleet) plus a podcast commuter whose bulk
/// episode downloads are the classic Wi-Fi offload candidate.
std::vector<UserProfile> streaming_population();

}  // namespace netmaster::synth
