// Trace generator: turns a UserProfile into a UserTrace.
//
// Generation is fully deterministic in (profile, num_days, seed); every
// user, day, and app draws from an independently derived RNG stream, so
// changing one profile never perturbs another user's trace.
#pragma once

#include <cstdint>
#include <span>

#include "synth/profiles.hpp"
#include "trace/trace.hpp"

namespace netmaster::synth {

/// Generates `num_days` of usage for one user. The returned trace is
/// validated (sorted, disjoint sessions, in-range events).
UserTrace generate_trace(const UserProfile& profile, int num_days,
                         std::uint64_t seed);

/// Generates a population, one trace per profile, from a single master
/// seed (per-user streams are derived from the user id).
TraceSet generate_population(std::span<const UserProfile> profiles,
                             int num_days, std::uint64_t seed);

}  // namespace netmaster::synth
