// Trace generator: turns a UserProfile into a UserTrace.
//
// Generation is fully deterministic in (profile, num_days, seed); every
// user, day, and app draws from an independently derived RNG stream, so
// changing one profile never perturbs another user's trace.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "synth/profiles.hpp"
#include "trace/trace.hpp"

namespace netmaster::synth {

/// Generates `num_days` of usage for one user. The returned trace is
/// validated (sorted, disjoint sessions, in-range events).
UserTrace generate_trace(const UserProfile& profile, int num_days,
                         std::uint64_t seed);

/// Per-day profile view for non-stationary users: returns the profile
/// shaping day `day`'s screen sessions (intensity curve, presence
/// dropout, session shape). The returned profile must carry the same
/// number of apps as the base profile — app ids and the foreground /
/// background transfer streams stay anchored to the base.
using DayProfileFn = std::function<const UserProfile&(int day)>;

/// Day-varying generation. A callback that always returns `profile`
/// (or an empty callback) generates bit-for-bit the same trace as the
/// stationary overload: the per-day RNG streams are untouched by the
/// profile lookup. This is the substrate for the drift archetypes in
/// synth/drift.hpp.
UserTrace generate_trace(const UserProfile& profile, int num_days,
                         std::uint64_t seed,
                         const DayProfileFn& day_profile);

/// Generates a population, one trace per profile, from a single master
/// seed (per-user streams are derived from the user id).
TraceSet generate_population(std::span<const UserProfile> profiles,
                             int num_days, std::uint64_t seed);

}  // namespace netmaster::synth
