#include "synth/drift.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"
#include "synth/generator.hpp"

namespace netmaster::synth {

namespace {

void validate_spec(const DriftSpec& spec) {
  NM_REQUIRE(spec.onset_day >= 0, "onset_day must be non-negative");
  NM_REQUIRE(spec.ramp_days > 0, "ramp_days must be positive");
  NM_REQUIRE(spec.period_days > 0, "period_days must be positive");
  NM_REQUIRE(std::isfinite(spec.max_alpha) && spec.max_alpha >= 0.0 &&
                 spec.max_alpha <= 1.0,
             "max_alpha must be in [0, 1]");
}

double lerp(double a, double b, double t) { return a + (b - a) * t; }

}  // namespace

double drift_alpha(const DriftSpec& spec, int day) {
  validate_spec(spec);
  if (spec.kind == DriftKind::kNone || day < spec.onset_day) return 0.0;
  const int since = day - spec.onset_day;
  switch (spec.kind) {
    case DriftKind::kAbrupt:
      return spec.max_alpha;
    case DriftKind::kGradual:
      return spec.max_alpha *
             std::min(1.0, static_cast<double>(since + 1) /
                               static_cast<double>(spec.ramp_days));
    case DriftKind::kSeasonal:
      // The first block after onset is the drifted mode, then the user
      // alternates back and forth.
      return (since / spec.period_days) % 2 == 0 ? spec.max_alpha : 0.0;
    case DriftKind::kNone:
      break;
  }
  return 0.0;
}

UserProfile blend_profiles(const UserProfile& base, const UserProfile& to,
                           double alpha) {
  NM_REQUIRE(std::isfinite(alpha) && alpha >= 0.0 && alpha <= 1.0,
             "blend alpha must be in [0, 1]");
  if (alpha == 0.0) return base;
  UserProfile out = base;
  for (int h = 0; h < kHoursPerDay; ++h) {
    out.weekday_intensity[h] =
        lerp(base.weekday_intensity[h], to.weekday_intensity[h], alpha);
    out.weekend_intensity[h] =
        lerp(base.weekend_intensity[h], to.weekend_intensity[h], alpha);
  }
  out.day_noise_sigma =
      lerp(base.day_noise_sigma, to.day_noise_sigma, alpha);
  out.presence_c = lerp(base.presence_c, to.presence_c, alpha);
  out.session_base_ms = static_cast<DurationMs>(
      lerp(static_cast<double>(base.session_base_ms),
           static_cast<double>(to.session_base_ms), alpha));
  out.usage_dwell_ms = static_cast<DurationMs>(
      lerp(static_cast<double>(base.usage_dwell_ms),
           static_cast<double>(to.usage_dwell_ms), alpha));
  return out;
}

UserTrace generate_drifting_trace(const UserProfile& profile,
                                  const DriftSpec& spec, int num_days,
                                  std::uint64_t seed) {
  validate_spec(spec);
  const UserProfile target = make_user(spec.target, profile.id);
  // A spec yields only a handful of distinct alphas (one for abrupt /
  // seasonal, ramp_days for gradual); blend each once.
  std::map<double, UserProfile> blends;
  const DayProfileFn day_profile =
      [&](int day) -> const UserProfile& {
    const double alpha = drift_alpha(spec, day);
    if (alpha <= 0.0) return profile;
    auto [it, inserted] = blends.try_emplace(alpha);
    if (inserted) it->second = blend_profiles(profile, target, alpha);
    return it->second;
  };
  return generate_trace(profile, num_days, seed, day_profile);
}

}  // namespace netmaster::synth
