// Synthetic user and app profiles.
//
// These profiles parameterize the workload generator that stands in for
// the paper's real traces (8 users x 3 weeks, plus 3 evaluation
// volunteers). A profile controls exactly the statistics the paper's
// algorithms consume: hourly usage intensity with weekday/weekend modes
// and day-to-day noise (habit regularity), screen-session structure,
// per-app foreground propensity, and per-app background network
// behaviour (periodic syncs / push arrivals with screen-off trickle
// rates).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "trace/trace.hpp"

namespace netmaster::synth {

/// Background traffic style of an app.
enum class SyncStyle {
  kNone,      ///< app never talks in the background
  kPeriodic,  ///< fixed period with jitter (email poll, keepalive)
  kPush,      ///< Poisson arrivals (IM push, notifications)
};

/// Behaviour of one app on a synthetic phone.
struct AppProfile {
  std::string name;

  /// Relative share of foreground launches (0 = installed but unused).
  double usage_weight = 0.0;

  /// Optional per-hour affinity multipliers on top of the user's
  /// intensity curve (e.g. news apps in the morning). All-ones = flat.
  std::array<double, kHoursPerDay> hour_affinity =
      make_flat_affinity();

  /// Probability that a foreground launch triggers network transfers.
  double fg_net_prob = 0.0;
  /// Mean number of transfers per triggering launch (apps open several
  /// connections per interaction: content, images, analytics). Drawn as
  /// 1 + Poisson(fg_burst_mean − 1).
  double fg_burst_mean = 3.0;
  /// Log-normal (mu, sigma) of foreground transfer bytes.
  double fg_bytes_mu = 9.0;   ///< exp(9.0) ~ 8 kB median
  double fg_bytes_sigma = 0.8;

  /// Background traffic.
  SyncStyle sync_style = SyncStyle::kNone;
  /// Mean interval between background sync *events* (period for
  /// kPeriodic, Poisson mean for kPush).
  DurationMs sync_interval_ms = 0;
  /// Relative jitter on the periodic interval (fraction of the period).
  double sync_jitter = 0.15;
  /// Mean number of transfers per sync event (DNS + TCP connections to
  /// several servers, as the screen-off measurement studies observed).
  /// Drawn as 1 + Poisson(bg_burst_mean − 1), spaced ~25 s apart.
  double bg_burst_mean = 1.7;
  /// Log-normal (mu, sigma) of background transfer bytes.
  double bg_bytes_mu = 7.4;   ///< exp(7.4) ~ 1.6 kB median
  double bg_bytes_sigma = 0.6;

  static constexpr std::array<double, kHoursPerDay> make_flat_affinity() {
    std::array<double, kHoursPerDay> a{};
    for (auto& v : a) v = 1.0;
    return a;
  }

  bool has_background() const { return sync_style != SyncStyle::kNone; }
};

/// Behaviour of one synthetic user.
struct UserProfile {
  UserId id = 0;
  std::string name;

  /// Mean foreground launches per hour of day, weekday / weekend modes.
  /// These are the "habit" the mining layer recovers.
  std::array<double, kHoursPerDay> weekday_intensity{};
  std::array<double, kHoursPerDay> weekend_intensity{};

  /// Sigma of the multiplicative log-normal day-to-day noise on the
  /// intensity curve. Small values -> highly regular user (high
  /// intra-user Pearson); large values -> erratic user.
  double day_noise_sigma = 0.25;

  /// Hour-level presence dropout strength. For an hour with intensity
  /// λ the user is present with probability λ/(λ+presence_c) (launch
  /// counts are compensated so the expected intensity is unchanged).
  /// This spreads Pr[u(ti)] across (0,1) — real users skip hours — and
  /// is what gives the Eq. 2 threshold δ its bite (Fig. 10c). 0 turns
  /// dropout off (perfectly habitual user).
  double presence_c = 3.5;

  /// Mean screen-session base length in ms (exponential), on top of
  /// which foreground dwell time accumulates. The paper's Fig. 2 shows
  /// mean sessions of roughly 10–25 s.
  DurationMs session_base_ms = 9000;

  /// Mean foreground dwell per launch in ms (exponential).
  DurationMs usage_dwell_ms = 6000;

  /// Mean transfer rates by screen state, kB/s, log-normal sigma 0.5.
  /// Paper Fig. 1b: 90% of screen-off transfers below 1 kB/s, 90% of
  /// screen-on transfers below 5 kB/s.
  double screen_on_rate_kbps = 2.8;
  double screen_off_rate_kbps = 0.45;

  std::vector<AppProfile> apps;

  const std::array<double, kHoursPerDay>& intensity_for_day(int day) const {
    return is_weekend(day) ? weekend_intensity : weekday_intensity;
  }
};

}  // namespace netmaster::synth
