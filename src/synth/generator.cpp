#include "synth/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace netmaster::synth {

namespace {

constexpr DurationMs kMinTransferMs = 500;
constexpr DurationMs kMaxTransferMs = 10 * kMsPerMinute;
constexpr DurationMs kSessionGapMs = 2 * kMsPerSecond;

/// A screen session under construction, carrying its launches.
struct DraftSession {
  TimeMs begin = 0;
  DurationMs length = 0;
  std::vector<AppUsage> launches;  // times relative to session begin
};

/// Draws a transfer duration from a byte count and a rate distribution.
DurationMs draw_transfer_duration(Rng& rng, double bytes,
                                  double mean_rate_kbps) {
  const double rate =
      mean_rate_kbps * std::exp(rng.normal(0.0, 0.5) - 0.125);
  const double secs = bytes / 1000.0 / std::max(rate, 1e-3);
  const auto ms = static_cast<DurationMs>(secs * 1000.0);
  return std::clamp(ms, kMinTransferMs, kMaxTransferMs);
}

/// Picks an app for a launch at the given hour, weighted by
/// usage_weight * hour_affinity. Returns -1 when no app is launchable.
AppId pick_app(Rng& rng, const UserProfile& profile, int hour) {
  double total = 0.0;
  for (const AppProfile& app : profile.apps) {
    total += app.usage_weight * app.hour_affinity[hour];
  }
  if (total <= 0.0) return -1;
  double draw = rng.uniform(0.0, total);
  for (std::size_t i = 0; i < profile.apps.size(); ++i) {
    draw -= profile.apps[i].usage_weight *
            profile.apps[i].hour_affinity[hour];
    if (draw <= 0.0) return static_cast<AppId>(i);
  }
  return static_cast<AppId>(profile.apps.size() - 1);
}

/// Generates the screen sessions and foreground launches for one day.
/// Sessions are clustered launches: 1–3 launches back to back, with the
/// session lasting the dwell times plus an exponential base.
std::vector<DraftSession> generate_day_sessions(Rng& rng,
                                                const UserProfile& profile,
                                                int day) {
  const auto& base = profile.intensity_for_day(day);
  const double noise =
      std::exp(rng.normal(0.0, profile.day_noise_sigma) -
               0.5 * profile.day_noise_sigma * profile.day_noise_sigma);

  std::vector<DraftSession> sessions;
  for (int hour = 0; hour < kHoursPerDay; ++hour) {
    const double lambda = base[hour] * noise;
    if (lambda <= 0.0) continue;
    int launches;
    if (profile.presence_c > 0.0) {
      // Hour-level presence dropout: the user is around this hour with
      // probability λ/(λ+c); conditioned on presence the launch count
      // is inflated so the long-run hourly intensity stays λ.
      const double presence = lambda / (lambda + profile.presence_c);
      if (!rng.bernoulli(presence)) continue;
      launches = rng.poisson(lambda / presence);
    } else {
      launches = rng.poisson(lambda);
    }
    while (launches > 0) {
      const int cluster =
          static_cast<int>(rng.uniform_int(1, std::min<std::int64_t>(2, launches)));
      launches -= cluster;

      DraftSession session;
      session.begin = hour_start(day, hour) +
                      rng.uniform_int(0, kMsPerHour - 1);
      DurationMs cursor = 0;
      for (int i = 0; i < cluster; ++i) {
        const AppId app = pick_app(rng, profile, hour);
        if (app < 0) break;
        const auto dwell = static_cast<DurationMs>(
            rng.exponential(static_cast<double>(profile.usage_dwell_ms)));
        session.launches.push_back({app, cursor, std::max<DurationMs>(dwell, 500)});
        cursor += session.launches.back().duration;
      }
      const auto extra = static_cast<DurationMs>(
          rng.exponential(static_cast<double>(profile.session_base_ms)));
      session.length = cursor + std::max<DurationMs>(extra, kMsPerSecond);
      sessions.push_back(std::move(session));
    }
  }
  return sessions;
}

/// Resolves session overlaps by shifting later sessions after earlier
/// ones (preserving order by start), clipping at the trace end.
void place_sessions(std::vector<DraftSession>& sessions, TimeMs trace_end) {
  std::sort(sessions.begin(), sessions.end(),
            [](const DraftSession& a, const DraftSession& b) {
              return a.begin < b.begin;
            });
  TimeMs prev_end = 0;
  for (DraftSession& s : sessions) {
    if (s.begin < prev_end + kSessionGapMs) {
      s.begin = prev_end + kSessionGapMs;
    }
    if (s.begin + s.length > trace_end) {
      s.length = trace_end - s.begin;  // may become empty; dropped below
    }
    prev_end = s.begin + std::max<DurationMs>(s.length, 0);
  }
  std::erase_if(sessions, [](const DraftSession& s) {
    return s.length < kMsPerSecond;
  });
}

/// Emits background transfers for one app over the whole trace.
void generate_background(Rng& rng, const UserProfile& profile,
                         AppId app_id, const AppProfile& app,
                         TimeMs trace_end,
                         std::vector<NetworkActivity>& out) {
  if (!app.has_background() || app.sync_interval_ms <= 0) return;

  TimeMs t = rng.uniform_int(0, app.sync_interval_ms - 1);
  while (t < trace_end) {
    // One sync event is a burst of connections (DNS, content, acks)
    // spread over tens of seconds.
    const int burst =
        1 + rng.poisson(std::max(app.bg_burst_mean - 1.0, 0.0));
    TimeMs member_time = t;
    for (int b = 0; b < burst; ++b) {
      const double bytes =
          rng.lognormal(app.bg_bytes_mu, app.bg_bytes_sigma);
      NetworkActivity n;
      n.app = app_id;
      n.start = member_time;
      n.duration = draw_transfer_duration(rng, bytes,
                                          profile.screen_off_rate_kbps);
      // Background payloads are mostly downlink with a small uplink ack
      // share; split 85/15.
      n.bytes_down = static_cast<std::int64_t>(bytes * 0.85);
      n.bytes_up = static_cast<std::int64_t>(bytes * 0.15);
      n.user_initiated = false;
      n.deferrable = true;
      if (n.start + n.duration <= trace_end) out.push_back(n);
      member_time += static_cast<DurationMs>(rng.exponential(25'000.0));
    }

    if (app.sync_style == SyncStyle::kPeriodic) {
      const double jitter =
          rng.uniform(-app.sync_jitter, app.sync_jitter);
      t += static_cast<DurationMs>(
          static_cast<double>(app.sync_interval_ms) * (1.0 + jitter));
    } else {  // kPush
      t += static_cast<DurationMs>(
          rng.exponential(static_cast<double>(app.sync_interval_ms)));
    }
    t = std::max<TimeMs>(t, 1);
  }
}

}  // namespace

UserTrace generate_trace(const UserProfile& profile, int num_days,
                         std::uint64_t seed) {
  return generate_trace(profile, num_days, seed, DayProfileFn{});
}

UserTrace generate_trace(const UserProfile& profile, int num_days,
                         std::uint64_t seed,
                         const DayProfileFn& day_profile) {
  NM_REQUIRE(num_days > 0, "num_days must be positive");
  NM_REQUIRE(!profile.apps.empty(), "profile needs at least one app");

  UserTrace trace;
  trace.user = profile.id;
  trace.num_days = num_days;
  for (const AppProfile& app : profile.apps) {
    trace.app_names.push_back(app.name);
  }
  const TimeMs trace_end = trace.trace_end();

  // Foreground: sessions + launches + launch-triggered transfers.
  std::vector<DraftSession> sessions;
  for (int day = 0; day < num_days; ++day) {
    Rng day_rng(derive_seed(seed, 1000u * static_cast<std::uint64_t>(
                                       profile.id + 1) +
                                      static_cast<std::uint64_t>(day)));
    const UserProfile& day_p = day_profile ? day_profile(day) : profile;
    NM_REQUIRE(day_p.apps.size() == profile.apps.size(),
               "day profile must keep the base app population");
    auto day_sessions = generate_day_sessions(day_rng, day_p, day);
    sessions.insert(sessions.end(),
                    std::make_move_iterator(day_sessions.begin()),
                    std::make_move_iterator(day_sessions.end()));
  }
  place_sessions(sessions, trace_end);

  Rng fg_rng(derive_seed(seed, 500u + static_cast<std::uint64_t>(profile.id)));
  for (const DraftSession& s : sessions) {
    trace.sessions.push_back({s.begin, s.begin + s.length});
    for (const AppUsage& launch : s.launches) {
      AppUsage placed = launch;
      placed.time += s.begin;
      // Clip dwell to the session.
      placed.duration = std::min<DurationMs>(
          placed.duration, s.begin + s.length - placed.time);
      if (placed.duration <= 0) continue;
      trace.usages.push_back(placed);

      const AppProfile& app =
          profile.apps[static_cast<std::size_t>(placed.app)];
      if (fg_rng.bernoulli(app.fg_net_prob)) {
        // A burst of connections per interaction, spread over the dwell.
        const int burst =
            1 + fg_rng.poisson(std::max(app.fg_burst_mean - 1.0, 0.0));
        for (int b = 0; b < burst; ++b) {
          const double bytes =
              fg_rng.lognormal(app.fg_bytes_mu, app.fg_bytes_sigma);
          NetworkActivity n;
          n.app = placed.app;
          n.start = placed.time +
                    fg_rng.uniform_int(0, std::max<DurationMs>(
                                              placed.duration - 1, 1));
          n.duration = draw_transfer_duration(
              fg_rng, bytes, profile.screen_on_rate_kbps);
          n.bytes_down = static_cast<std::int64_t>(bytes * 0.9);
          n.bytes_up = static_cast<std::int64_t>(bytes * 0.1);
          n.user_initiated = true;
          n.deferrable = false;
          if (n.start + n.duration <= trace_end) {
            trace.activities.push_back(n);
          }
        }
      }
    }
  }

  // Background: per-app streams over the whole trace.
  for (std::size_t i = 0; i < profile.apps.size(); ++i) {
    Rng bg_rng(derive_seed(
        seed, 900000u + 100u * static_cast<std::uint64_t>(profile.id) + i));
    generate_background(bg_rng, profile, static_cast<AppId>(i),
                        profile.apps[i], trace_end, trace.activities);
  }

  std::sort(trace.usages.begin(), trace.usages.end(),
            [](const AppUsage& a, const AppUsage& b) {
              return a.time < b.time;
            });
  std::sort(trace.activities.begin(), trace.activities.end(),
            [](const NetworkActivity& a, const NetworkActivity& b) {
              return a.start < b.start;
            });
  trace.validate();
  return trace;
}

TraceSet generate_population(std::span<const UserProfile> profiles,
                             int num_days, std::uint64_t seed) {
  TraceSet set;
  set.users.reserve(profiles.size());
  for (const UserProfile& profile : profiles) {
    set.users.push_back(generate_trace(
        profile, num_days,
        derive_seed(seed, static_cast<std::uint64_t>(profile.id))));
  }
  return set;
}

}  // namespace netmaster::synth
