#include "synth/presets.hpp"

#include <cmath>

#include "common/error.hpp"

namespace netmaster::synth {

namespace {

using Curve = std::array<double, kHoursPerDay>;

/// Builds an intensity curve from (hour, value) anchor points with
/// linear interpolation between anchors (flat before the first and
/// after the last anchor).
Curve curve_from_anchors(
    std::initializer_list<std::pair<int, double>> anchors) {
  Curve c{};
  NM_REQUIRE(anchors.size() >= 2, "need at least two anchors");
  auto it = anchors.begin();
  auto next = std::next(it);
  for (int h = 0; h < kHoursPerDay; ++h) {
    while (next != anchors.end() && next->first <= h) {
      it = next;
      ++next;
    }
    if (h <= it->first || next == anchors.end()) {
      c[h] = it->second;
    } else {
      const double span = next->first - it->first;
      const double frac = (h - it->first) / span;
      c[h] = it->second + frac * (next->second - it->second);
    }
  }
  return c;
}

Curve scaled(const Curve& c, double factor) {
  Curve out = c;
  for (auto& v : out) v *= factor;
  return out;
}

/// Morning-heavy affinity for news-style apps.
Curve morning_affinity() {
  return curve_from_anchors({{0, 0.2}, {6, 1.0}, {8, 3.0}, {10, 1.5},
                             {14, 0.8}, {20, 1.0}, {23, 0.3}});
}

/// Evening-heavy affinity for video/entertainment apps.
Curve evening_affinity() {
  return curve_from_anchors({{0, 0.5}, {6, 0.1}, {12, 0.5}, {18, 1.5},
                             {21, 3.0}, {23, 1.5}});
}

AppProfile app(const char* name, double weight, double fg_net_prob,
               SyncStyle style = SyncStyle::kNone,
               DurationMs interval = 0) {
  AppProfile a;
  a.name = name;
  a.usage_weight = weight;
  a.fg_net_prob = fg_net_prob;
  a.sync_style = style;
  a.sync_interval_ms = interval;
  return a;
}

/// Restricts a user to a subset of apps: everything not in `kept` loses
/// both its foreground weight and its background sync (apps that are
/// never opened or signed into do not sync either — this is what makes
/// the paper's "8 of 23 apps have network activities" observation hold
/// per user).
void keep_only(UserProfile& user, std::initializer_list<int> kept) {
  std::vector<bool> keep(user.apps.size(), false);
  for (int i : kept) keep[static_cast<std::size_t>(i)] = true;
  for (std::size_t i = 0; i < user.apps.size(); ++i) {
    if (!keep[i]) {
      user.apps[i].usage_weight = 0.0;
      user.apps[i].sync_style = SyncStyle::kNone;
    }
  }
}

}  // namespace

std::vector<AppProfile> standard_app_population() {
  std::vector<AppProfile> apps;
  apps.reserve(23);

  // Index 0: the dominant messenger (the paper's com.tencent.mm, 59% of
  // user 3's launches). Push keepalives + message arrivals.
  apps.push_back(app("im.messenger", 10.0, 0.9, SyncStyle::kPush,
                     24 * kMsPerMinute));
  apps.push_back(app("browser", 3.0, 0.95));
  // Contacts/phone/settings occasionally sync or check connectivity —
  // the paper's Fig. 5 lists all three among the networked apps.
  apps.push_back(app("contacts", 1.5, 0.15));
  apps.push_back(app("phone", 1.5, 0.15));
  apps.push_back(app("settings", 0.5, 0.15));
  apps.push_back(app("docs", 0.8, 0.6));
  apps.push_back(
      app("network.assistant", 0.5, 0.3, SyncStyle::kPeriodic,
          2 * kMsPerHour));
  apps.push_back(
      app("email", 1.0, 0.8, SyncStyle::kPeriodic, 45 * kMsPerMinute));

  AppProfile news = app("news", 1.0, 0.85, SyncStyle::kPeriodic,
                        90 * kMsPerMinute);
  news.hour_affinity = morning_affinity();
  apps.push_back(news);

  apps.push_back(app("maps", 0.5, 0.85));
  apps.push_back(app("music", 0.8, 0.4));

  AppProfile video = app("video", 0.6, 0.95);
  video.hour_affinity = evening_affinity();
  video.fg_bytes_mu = 12.0;  // exp(12) ~ 160 kB median: streaming chunks
  apps.push_back(video);

  apps.push_back(app("social.feed", 1.5, 0.9, SyncStyle::kPush,
                     60 * kMsPerMinute));
  apps.push_back(app("game.casual", 1.0, 0.25));
  apps.push_back(app("camera", 0.5, 0.0));
  apps.push_back(app("gallery", 0.4, 0.0));
  apps.push_back(app("calculator", 0.2, 0.0));
  apps.push_back(app("weather", 0.3, 0.7, SyncStyle::kPeriodic,
                     4 * kMsPerHour));
  apps.push_back(app("appstore", 0.3, 0.5, SyncStyle::kPeriodic,
                     8 * kMsPerHour));
  apps.push_back(app("clock", 0.2, 0.0));
  apps.push_back(app("calendar", 0.3, 0.1));
  apps.push_back(app("sms", 1.0, 0.05));
  apps.push_back(app("banking", 0.2, 0.9));

  NM_ASSERT(apps.size() == 23, "standard population must have 23 apps");
  return apps;
}

UserProfile make_user(Archetype archetype, UserId id) {
  UserProfile user;
  user.id = id;
  user.apps = standard_app_population();

  // The curves below are deliberately *spiky* and phase-shifted between
  // archetypes: real users concentrate usage in a few personal hours,
  // which is why the paper's cross-user Pearson averages only 0.1353
  // while each user's own days correlate at 0.8+.
  switch (archetype) {
    case Archetype::kOfficeWorker:
      user.name = "office-worker";
      // Phone lives in the pocket during work; lunch and evening spikes.
      user.weekday_intensity = curve_from_anchors(
          {{0, 0.2}, {6, 0.2}, {7, 14.0}, {8, 4.0}, {11, 2.0}, {12, 30.0},
           {13, 4.0}, {17, 2.0}, {19, 8.0}, {20, 34.0}, {22, 10.0},
           {23, 1.0}});
      user.weekend_intensity = curve_from_anchors(
          {{0, 1.0}, {7, 0.5}, {10, 14.0}, {13, 8.0}, {16, 6.0},
           {20, 22.0}, {23, 3.0}});
      user.day_noise_sigma = 0.20;
      user.presence_c = 5.0;
      break;

    case Archetype::kStudent:
      user.name = "student";
      // Between-lecture checking and a long late-night block.
      user.weekday_intensity = curve_from_anchors(
          {{0, 10.0}, {1, 6.0}, {3, 0.3}, {9, 0.5}, {10, 16.0}, {11, 3.0},
           {14, 3.0}, {15, 18.0}, {16, 4.0}, {21, 6.0}, {22, 26.0},
           {23, 16.0}});
      user.weekend_intensity = curve_from_anchors(
          {{0, 14.0}, {3, 1.0}, {11, 1.0}, {13, 12.0}, {17, 8.0},
           {22, 22.0}, {23, 18.0}});
      user.day_noise_sigma = 0.28;
      user.presence_c = 6.5;
      break;

    case Archetype::kNightOwl:
      user.name = "night-owl";
      user.weekday_intensity = curve_from_anchors(
          {{0, 26.0}, {2, 12.0}, {4, 1.0}, {5, 0.2}, {13, 0.5}, {15, 4.0},
           {18, 3.0}, {21, 10.0}, {22, 24.0}, {23, 28.0}});
      user.weekend_intensity = curve_from_anchors(
          {{0, 30.0}, {3, 14.0}, {5, 0.5}, {14, 1.0}, {18, 4.0},
           {22, 26.0}, {23, 30.0}});
      user.day_noise_sigma = 0.25;
      user.presence_c = 6.0;
      // The Fig. 5 subject: only 8 apps ever used, messenger dominant.
      keep_only(user, {0, 1, 2, 3, 4, 5, 6, 7});
      user.apps[0].usage_weight = 12.5;  // ~59% of launches
      break;

    case Archetype::kCommuter:
      user.name = "commuter";
      // Nothing but the two commute windows and a short lunch glance.
      user.weekday_intensity = curve_from_anchors(
          {{0, 0.1}, {6, 0.3}, {7, 34.0}, {8, 30.0}, {9, 1.5}, {12, 6.0},
           {13, 1.0}, {17, 4.0}, {18, 36.0}, {19, 26.0}, {20, 2.0},
           {23, 0.3}});
      user.weekend_intensity = curve_from_anchors(
          {{0, 0.5}, {9, 0.5}, {11, 10.0}, {14, 6.0}, {17, 8.0},
           {20, 4.0}, {23, 0.5}});
      user.day_noise_sigma = 0.22;
      user.presence_c = 4.5;
      break;

    case Archetype::kRetiree:
      user.name = "retiree";
      // Early riser: morning block, midday nap, afternoon block, early
      // night.
      user.weekday_intensity = curve_from_anchors(
          {{0, 0.1}, {5, 2.0}, {6, 16.0}, {8, 18.0}, {10, 4.0}, {12, 1.0},
           {14, 14.0}, {16, 12.0}, {18, 3.0}, {20, 1.0}, {21, 0.2},
           {23, 0.1}});
      user.weekend_intensity = user.weekday_intensity;  // same rhythm
      user.day_noise_sigma = 0.15;
      user.presence_c = 0.8;  // the most habitual subject (Fig. 4)
      break;

    case Archetype::kHeavyMessenger:
      user.name = "heavy-messenger";
      user.weekday_intensity = curve_from_anchors(
          {{0, 2.0}, {2, 0.3}, {7, 6.0}, {9, 26.0}, {12, 32.0}, {15, 28.0},
           {18, 30.0}, {21, 36.0}, {23, 10.0}});
      user.weekend_intensity = scaled(user.weekday_intensity, 0.9);
      user.day_noise_sigma = 0.30;
      user.presence_c = 4.5;
      user.apps[0].usage_weight = 30.0;
      break;

    case Archetype::kWeekendWarrior:
      user.name = "weekend-warrior";
      user.weekday_intensity = curve_from_anchors(
          {{0, 0.2}, {8, 0.5}, {13, 2.0}, {18, 1.0}, {21, 4.0},
           {23, 0.5}});
      user.weekend_intensity = curve_from_anchors(
          {{0, 4.0}, {3, 0.5}, {9, 6.0}, {11, 24.0}, {15, 30.0},
           {19, 22.0}, {22, 16.0}, {23, 8.0}});
      user.day_noise_sigma = 0.32;
      user.presence_c = 7.0;
      break;

    case Archetype::kLightUser:
      user.name = "light-user";
      user.weekday_intensity = curve_from_anchors(
          {{0, 0.1}, {8, 0.3}, {9, 3.0}, {10, 0.5}, {13, 2.5}, {14, 0.5},
           {19, 1.0}, {20, 4.0}, {21, 1.0}, {23, 0.2}});
      user.weekend_intensity = scaled(user.weekday_intensity, 1.2);
      user.day_noise_sigma = 0.35;
      user.presence_c = 7.0;
      keep_only(user, {0, 1, 3, 7, 21});
      break;

    case Archetype::kMediaStreamer: {
      user.name = "media-streamer";
      // Reliable long evenings at home (the habit hours a presence
      // predictor can bank on) plus a lighter lunch block.
      user.weekday_intensity = curve_from_anchors(
          {{0, 2.0}, {1, 0.3}, {7, 0.5}, {12, 8.0}, {13, 1.5}, {18, 6.0},
           {19, 28.0}, {22, 30.0}, {23, 8.0}});
      user.weekend_intensity = curve_from_anchors(
          {{0, 4.0}, {2, 0.5}, {10, 4.0}, {13, 10.0}, {18, 20.0},
           {21, 32.0}, {23, 10.0}});
      user.day_noise_sigma = 0.18;  // streaming evenings are a ritual
      user.presence_c = 2.0;
      // The long-lived media flow: the player tops up its buffer with
      // one chunk per period even with the screen off (audio keeps
      // playing). Large chunks, one connection per fetch — this is the
      // flow EStreamer-style burst shaping acts on.
      AppProfile stream = app("media.stream", 4.0, 0.95,
                              SyncStyle::kPeriodic, 3 * kMsPerMinute);
      stream.hour_affinity = evening_affinity();
      stream.bg_burst_mean = 1.0;
      stream.bg_bytes_mu = 12.3;  // exp(12.3) ~ 220 kB chunk
      stream.bg_bytes_sigma = 0.3;
      stream.fg_bytes_mu = 12.0;
      user.apps.push_back(stream);
      break;
    }

    case Archetype::kPodcastCommuter: {
      user.name = "podcast-commuter";
      // The commuter rhythm, but the network load is dominated by bulk
      // episode downloads — big deferrable blobs that are the classic
      // Wi-Fi offload candidate.
      user.weekday_intensity = curve_from_anchors(
          {{0, 0.2}, {6, 0.5}, {7, 26.0}, {8, 22.0}, {9, 1.0}, {12, 4.0},
           {17, 3.0}, {18, 28.0}, {19, 20.0}, {21, 10.0}, {23, 0.5}});
      user.weekend_intensity = curve_from_anchors(
          {{0, 1.0}, {9, 1.0}, {10, 12.0}, {14, 8.0}, {19, 14.0},
           {22, 6.0}, {23, 1.0}});
      user.day_noise_sigma = 0.22;
      user.presence_c = 3.0;
      AppProfile pod = app("podcasts", 3.0, 0.9, SyncStyle::kPeriodic,
                           3 * kMsPerHour);
      pod.bg_burst_mean = 1.0;
      pod.bg_bytes_mu = 14.2;  // exp(14.2) ~ 1.5 MB episode
      pod.bg_bytes_sigma = 0.5;
      user.apps.push_back(pod);
      break;
    }
  }
  return user;
}

std::vector<UserProfile> study_population() {
  // User 3 is the Fig. 5 subject (night owl, 8 of 23 apps); user 4 is
  // the Fig. 4 subject (retiree — the most regular day-to-day pattern).
  const Archetype kinds[] = {
      Archetype::kOfficeWorker,   Archetype::kStudent,
      Archetype::kNightOwl,       Archetype::kRetiree,
      Archetype::kCommuter,       Archetype::kHeavyMessenger,
      Archetype::kWeekendWarrior, Archetype::kLightUser,
  };
  std::vector<UserProfile> users;
  UserId id = 1;  // the paper numbers users 1..8
  for (Archetype kind : kinds) users.push_back(make_user(kind, id++));
  return users;
}

std::vector<UserProfile> volunteer_population() {
  return {make_user(Archetype::kOfficeWorker, 1),
          make_user(Archetype::kStudent, 2),
          make_user(Archetype::kHeavyMessenger, 3)};
}

UserProfile make_streamer(UserId id, DurationMs chunk_period) {
  NM_REQUIRE(chunk_period > 0, "chunk period must be positive");
  UserProfile user = make_user(Archetype::kMediaStreamer, id);
  AppProfile& stream = user.apps.back();
  NM_ASSERT(stream.name == "media.stream",
            "streamer profile must end with the media flow");
  // Burst shaping at fixed bitrate: scale the chunk size with the
  // period so mean bytes/s of the flow are invariant. For a log-normal
  // the mean scales as exp(mu), so the period ratio shifts mu.
  stream.bg_bytes_mu +=
      std::log(static_cast<double>(chunk_period) /
               static_cast<double>(stream.sync_interval_ms));
  stream.sync_interval_ms = chunk_period;
  return user;
}

std::vector<UserProfile> streaming_population() {
  return {make_streamer(1, 3 * kMsPerMinute),
          make_streamer(2, 8 * kMsPerMinute),
          make_user(Archetype::kPodcastCommuter, 3)};
}

}  // namespace netmaster::synth
