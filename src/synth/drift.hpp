// Non-stationary user archetypes (drift workloads for ROADMAP item 5).
//
// Each drift spec layers a habit change over any base Archetype by
// blending its behavioural shape toward a target archetype with a
// day-dependent strength alpha(day):
//
//   kAbrupt   — step change: alpha jumps 0 → max_alpha at onset_day
//               (travel, a new job; the changepoint the detector must
//               localize),
//   kGradual  — linear ramp over ramp_days starting at onset_day
//               (shifting sleep schedule),
//   kSeasonal — alternating period_days blocks of base and drifted
//               habits starting at onset_day (on-call rotations,
//               semester vs break).
//
// Blending moves exactly the statistics the miner recovers — hourly
// intensity curves, presence dropout, session shape — while keeping
// the app population and transfer parameters anchored to the base
// profile, so drifted traces stay comparable in traffic volume and the
// energy deltas isolate the habit shift. alpha = 0 days are generated
// bit-for-bit as the stationary archetype.
#pragma once

#include <cstdint>

#include "synth/presets.hpp"
#include "synth/profiles.hpp"
#include "trace/trace.hpp"

namespace netmaster::synth {

enum class DriftKind {
  kNone,      ///< stationary (alpha = 0 everywhere)
  kAbrupt,    ///< step to max_alpha at onset_day
  kGradual,   ///< linear ramp over ramp_days from onset_day
  kSeasonal,  ///< alternating period_days blocks from onset_day
};

struct DriftSpec {
  DriftKind kind = DriftKind::kNone;
  /// Archetype whose habit shape the user drifts toward.
  Archetype target = Archetype::kNightOwl;
  /// First day (absolute, 0-based) on which alpha may be non-zero.
  int onset_day = 0;
  /// kGradual: days from onset to reach max_alpha.
  int ramp_days = 7;
  /// kSeasonal: length of each alternating mode block.
  int period_days = 7;
  /// Blend strength cap in [0, 1]; 1 = fully the target's habits.
  double max_alpha = 1.0;
};

/// Blend strength in [0, max_alpha] for an absolute day index.
double drift_alpha(const DriftSpec& spec, int day);

/// Interpolates the habit-shape parameters of `base` toward `to` by
/// `alpha` in [0, 1]: intensity curves, day noise, presence dropout,
/// session/dwell lengths. Identity, apps, and transfer rates stay the
/// base's. alpha = 0 returns `base` unchanged.
UserProfile blend_profiles(const UserProfile& base, const UserProfile& to,
                           double alpha);

/// Generates a trace whose habits drift from `profile` toward
/// `spec.target` per drift_alpha. With kind = kNone (or alpha = 0 for
/// every day) the result is bit-for-bit generate_trace(profile, ...).
UserTrace generate_drifting_trace(const UserProfile& profile,
                                  const DriftSpec& spec, int num_days,
                                  std::uint64_t seed);

}  // namespace netmaster::synth
