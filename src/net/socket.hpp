// Small portable socket layer (POSIX TCP) for the netmasterd wire
// front-end.
//
// RAII wrappers around loopback/TCP stream sockets: a TcpListener
// binds (port 0 picks an ephemeral port — tests and the bench use
// this), accept() yields connected TcpStreams, and TcpStream moves
// bytes. Line framing lives one layer up (net/transport.hpp); this
// file is only file descriptors and syscalls, so everything above it
// can also run over the in-process transport with no socket at all.
//
// Errors are netmaster::Error with errno context; EOF is a value
// (recv returning 0), not an error.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace netmaster::net {

/// A connected TCP byte stream. Move-only; closes on destruction.
///
/// Cross-thread teardown contract: shutdown() may be called from any
/// thread to wake a peer blocked in recv_some/send_all (they observe
/// EOF / a send error); close() releases the descriptor and must only
/// be called once no other thread can still be inside a syscall on it
/// — otherwise the kernel may hand the freed descriptor number to a
/// new socket under the blocked thread. Threads sharing a stream shut
/// down first and let the owning thread (or the destructor) close.
class TcpStream {
 public:
  TcpStream() = default;
  /// Adopts an already-connected descriptor (listener side).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() { close(); }

  TcpStream(TcpStream&& other) noexcept
      : fd_(other.fd_.exchange(-1)) {}
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static TcpStream connect(const std::string& host, std::uint16_t port);

  bool valid() const {
    return fd_.load(std::memory_order_relaxed) >= 0;
  }

  /// Writes the whole buffer (loops over partial sends). Throws on a
  /// closed/failed peer.
  void send_all(const char* data, std::size_t len);

  /// Reads at most `len` bytes; returns 0 on orderly peer shutdown.
  std::size_t recv_some(char* data, std::size_t len);

  /// Half-closes both directions without releasing the descriptor: a
  /// thread blocked in recv_some() wakes with EOF. Safe to call
  /// concurrently with recv_some/send_all on another thread.
  void shutdown() noexcept;

  /// Shuts down, then releases the descriptor. Not safe while another
  /// thread is blocked on the stream — use shutdown() for that.
  void close();

 private:
  std::atomic<int> fd_{-1};
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; `port` 0 picks an ephemeral port (read it back
  /// with port()).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener() { close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actually-bound port.
  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. Transient accept failures
  /// (aborted handshakes, descriptor exhaustion) retry — with a short
  /// backoff for the resource-exhaustion ones — so a loaded daemon
  /// never silently stops accepting. Returns an invalid stream only
  /// when the listener was closed from another thread (orderly
  /// shutdown).
  TcpStream accept();

  void close();

 private:
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace netmaster::net
