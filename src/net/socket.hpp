// Small portable socket layer (POSIX TCP) for the netmasterd wire
// front-end.
//
// RAII wrappers around loopback/TCP stream sockets: a TcpListener
// binds (port 0 picks an ephemeral port — tests and the bench use
// this), accept() yields connected TcpStreams, and TcpStream moves
// bytes. Line framing lives one layer up (net/transport.hpp); this
// file is only file descriptors and syscalls, so everything above it
// can also run over the in-process transport with no socket at all.
//
// Errors are netmaster::Error with errno context; EOF is a value
// (recv returning 0), not an error.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace netmaster::net {

/// A connected TCP byte stream. Move-only; closes on destruction.
class TcpStream {
 public:
  TcpStream() = default;
  /// Adopts an already-connected descriptor (listener side).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() { close(); }

  TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) {
    other.fd_ = -1;
  }
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1").
  static TcpStream connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }

  /// Writes the whole buffer (loops over partial sends). Throws on a
  /// closed/failed peer.
  void send_all(const char* data, std::size_t len);

  /// Reads at most `len` bytes; returns 0 on orderly peer shutdown.
  std::size_t recv_some(char* data, std::size_t len);

  void close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  /// Binds and listens; `port` 0 picks an ephemeral port (read it back
  /// with port()).
  explicit TcpListener(std::uint16_t port);
  ~TcpListener() { close(); }

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actually-bound port.
  std::uint16_t port() const { return port_; }

  /// Blocks for the next connection. Returns an invalid stream when
  /// the listener was closed from another thread (orderly shutdown).
  TcpStream accept();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace netmaster::net
