// The netmasterd wire protocol.
//
// Line-delimited, space-separated ASCII. One request line in, one
// response line out. Grammar (timestamps are trace-epoch TimeMs,
// app fields are indices into the user's app table, booleans are 0/1):
//
//   user <id> <train_days> <num_days> <app0> [<app1> ...]
//   ingest <user> screen-on <t>
//   ingest <user> screen-off <t>
//   ingest <user> app <t> <app> <duration>
//   ingest <user> net <t> <app> <duration> <down> <up> <ui> <def>
//   finish <user>
//   get-schedule <user>
//   stats
//   drain
//   shutdown
//
// Responses are `ok [payload...]` or `err <message>`. App names may
// not contain whitespace (they are tokens). At equal timestamps a
// screen-off must be sent before a screen-on: session reconstruction
// pairs on/off events in arrival order and discards an `on` while a
// session is already open.
//
// This file only parses request lines into a typed Request and
// formats them back (the load generator uses format() to build its
// event stream); daemon semantics live in src/daemon/.
#pragma once

#include <string>
#include <vector>

#include "service/record_store.hpp"
#include "trace/trace.hpp"

namespace netmaster::net {

enum class RequestKind {
  kUser,         ///< register a user (app table + horizon)
  kIngest,       ///< one monitoring record
  kFinish,       ///< end of a user's event stream
  kGetSchedule,  ///< fetch the user's current schedule
  kStats,        ///< daemon counters snapshot
  kDrain,        ///< block until all queued events are applied
  kShutdown,     ///< drain, then stop the daemon
};

/// One parsed request line. Fields beyond `kind` are meaningful only
/// for the kinds that carry them (user/ingest payloads).
struct Request {
  RequestKind kind = RequestKind::kStats;
  UserId user = 0;
  int train_days = 0;                  ///< kUser
  int num_days = 0;                    ///< kUser
  std::vector<std::string> apps;       ///< kUser
  service::Record record;              ///< kIngest
};

/// Parses one request line. Returns false (and sets `error`) on
/// malformed input; never throws on bad wire data.
bool parse_request(const std::string& line, Request& out,
                   std::string& error);

/// Serializes a request back to its wire line (round-trips through
/// parse_request). The load generator builds its streams with this.
std::string format_request(const Request& request);

/// Response helpers.
std::string ok_response(const std::string& payload = "");
std::string err_response(const std::string& message);

/// Convenience constructors for the common ingest records.
Request make_screen_request(UserId user, bool on, TimeMs t);
Request make_app_request(UserId user, TimeMs t, AppId app,
                         DurationMs duration);
Request make_net_request(UserId user, TimeMs t, AppId app,
                         DurationMs duration, std::int64_t down,
                         std::int64_t up, bool user_initiated,
                         bool deferrable);

}  // namespace netmaster::net
