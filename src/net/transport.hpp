// Line-framed connection transports.
//
// The daemon speaks a line-delimited protocol (net/protocol.hpp) over
// an abstract Connection: read_line blocks for the next '\n'-terminated
// request, write_line sends one response. Two implementations:
//
//   SocketConnection — buffered line framing over a TcpStream (the
//                      wire front-end);
//   LocalConnection  — a pair of in-process bounded queues, so tests
//                      and benches drive the daemon with zero sockets
//                      and zero syscalls (the csp-channel idiom).
//
// Matching Listener implementations let Netmasterd::serve() accept
// from either world through one interface. All blocking calls return
// cleanly (read_line -> false) when the peer closes, so serve loops
// need no special shutdown signalling beyond closing connections.
#pragma once

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "net/socket.hpp"

namespace netmaster::net {

/// One bidirectional line-framed conversation.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Blocks for the next line (without the trailing '\n'). Returns
  /// false on orderly peer close / transport shutdown.
  virtual bool read_line(std::string& line) = 0;

  /// Sends one line ('\n' appended).
  virtual void write_line(const std::string& line) = 0;

  /// Closes both directions; pending and future reads return false.
  virtual void close() = 0;
};

/// Accept source for Netmasterd::serve().
class Listener {
 public:
  virtual ~Listener() = default;

  /// Blocks for the next connection; nullptr when the listener was
  /// closed (serve loops exit then).
  virtual std::unique_ptr<Connection> accept() = 0;

  virtual void close() = 0;
};

/// Line framing over a TCP stream.
class SocketConnection final : public Connection {
 public:
  explicit SocketConnection(TcpStream stream)
      : stream_(std::move(stream)) {}

  bool read_line(std::string& line) override;
  void write_line(const std::string& line) override;
  /// Shuts the socket down (a thread blocked in read_line wakes and
  /// returns false) but defers releasing the descriptor to the
  /// destructor — by then no thread can still be inside recv on it,
  /// so the kernel cannot hand the number to a new socket underneath
  /// a blocked reader. This makes close() safe from any thread.
  void close() override { stream_.shutdown(); }

 private:
  TcpStream stream_;
  std::string buffer_;  ///< bytes received but not yet consumed
};

/// Listener over a bound TCP socket.
class SocketListener final : public Listener {
 public:
  /// Port 0 binds an ephemeral port (see port()).
  explicit SocketListener(std::uint16_t port) : listener_(port) {}

  std::uint16_t port() const { return listener_.port(); }

  std::unique_ptr<Connection> accept() override;
  void close() override { listener_.close(); }

 private:
  TcpListener listener_;
};

/// One direction of an in-process connection: a bounded line queue.
/// close() wakes both producers and consumers.
class LineQueue {
 public:
  explicit LineQueue(std::size_t capacity = 1024)
      : capacity_(capacity) {}

  /// Blocks while full; returns false when closed.
  bool push(const std::string& line);
  /// Blocks while empty; returns false when closed *and* drained.
  bool pop(std::string& line);
  void close();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> lines_;
  std::size_t capacity_;
  bool closed_ = false;
};

/// In-process connection endpoint: reads from one queue, writes the
/// other. Created in pairs by LocalListener::connect().
class LocalConnection final : public Connection {
 public:
  LocalConnection(std::shared_ptr<LineQueue> in,
                  std::shared_ptr<LineQueue> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  bool read_line(std::string& line) override { return in_->pop(line); }
  void write_line(const std::string& line) override { out_->push(line); }
  void close() override {
    in_->close();
    out_->close();
  }

 private:
  std::shared_ptr<LineQueue> in_;
  std::shared_ptr<LineQueue> out_;
};

/// In-process accept source. A client calls connect() and gets its end
/// of a fresh connection; the serving side's accept() returns the
/// other end.
class LocalListener final : public Listener {
 public:
  /// Client side: creates a connection pair and queues the server end
  /// for accept(). Throws when the listener is closed.
  std::unique_ptr<Connection> connect();

  std::unique_ptr<Connection> accept() override;
  void close() override;

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Connection>> pending_;
  bool closed_ = false;
};

}  // namespace netmaster::net
