#include "net/transport.hpp"

#include "common/error.hpp"

namespace netmaster::net {

bool SocketConnection::read_line(std::string& line) {
  while (true) {
    const auto nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (!stream_.valid()) return false;
    char chunk[4096];
    const std::size_t n = stream_.recv_some(chunk, sizeof(chunk));
    if (n == 0) {
      // Orderly close; a trailing unterminated fragment is dropped —
      // the protocol is strictly line-framed.
      return false;
    }
    buffer_.append(chunk, n);
  }
}

void SocketConnection::write_line(const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  stream_.send_all(framed.data(), framed.size());
}

std::unique_ptr<Connection> SocketListener::accept() {
  TcpStream stream = listener_.accept();
  if (!stream.valid()) return nullptr;
  return std::make_unique<SocketConnection>(std::move(stream));
}

bool LineQueue::push(const std::string& line) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || lines_.size() < capacity_; });
  if (closed_) return false;
  lines_.push_back(line);
  lock.unlock();
  cv_.notify_all();
  return true;
}

bool LineQueue::pop(std::string& line) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !lines_.empty(); });
  if (lines_.empty()) return false;  // closed and drained
  line = std::move(lines_.front());
  lines_.pop_front();
  lock.unlock();
  cv_.notify_all();
  return true;
}

void LineQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::unique_ptr<Connection> LocalListener::connect() {
  auto to_server = std::make_shared<LineQueue>();
  auto to_client = std::make_shared<LineQueue>();
  auto client =
      std::make_unique<LocalConnection>(to_client, to_server);
  auto server =
      std::make_unique<LocalConnection>(to_server, to_client);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    NM_REQUIRE(!closed_, "connect on a closed LocalListener");
    pending_.push_back(std::move(server));
  }
  cv_.notify_all();
  return client;
}

std::unique_ptr<Connection> LocalListener::accept() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return closed_ || !pending_.empty(); });
  if (pending_.empty()) return nullptr;
  auto conn = std::move(pending_.front());
  pending_.pop_front();
  return conn;
}

void LocalListener::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace netmaster::net
