#include "net/protocol.hpp"

#include <charconv>
#include <sstream>

namespace netmaster::net {

namespace {

/// Splits on runs of spaces (the grammar never produces empty tokens).
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

template <typename Int>
bool parse_int(const std::string& token, Int& out) {
  const char* first = token.data();
  const char* last = first + token.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

bool parse_bool(const std::string& token, bool& out) {
  if (token == "0") {
    out = false;
    return true;
  }
  if (token == "1") {
    out = true;
    return true;
  }
  return false;
}

bool fail(std::string& error, const std::string& message) {
  error = message;
  return false;
}

}  // namespace

bool parse_request(const std::string& line, Request& out,
                   std::string& error) {
  const std::vector<std::string> tok = tokenize(line);
  if (tok.empty()) return fail(error, "empty request");
  out = Request{};

  const std::string& verb = tok[0];
  if (verb == "stats" || verb == "drain" || verb == "shutdown") {
    if (tok.size() != 1) return fail(error, verb + " takes no arguments");
    out.kind = verb == "stats"  ? RequestKind::kStats
               : verb == "drain" ? RequestKind::kDrain
                                 : RequestKind::kShutdown;
    return true;
  }

  if (verb == "user") {
    // user <id> <train_days> <num_days> <app0> [...]
    if (tok.size() < 5)
      return fail(error, "user needs <id> <train_days> <num_days> <apps...>");
    out.kind = RequestKind::kUser;
    if (!parse_int(tok[1], out.user)) return fail(error, "bad user id");
    if (!parse_int(tok[2], out.train_days) || out.train_days <= 0)
      return fail(error, "bad train_days");
    if (!parse_int(tok[3], out.num_days) ||
        out.num_days <= out.train_days)
      return fail(error, "num_days must exceed train_days");
    if (out.train_days % 7 != 0)
      return fail(error, "train_days must be a multiple of 7");
    out.apps.assign(tok.begin() + 4, tok.end());
    return true;
  }

  if (verb == "finish" || verb == "get-schedule") {
    if (tok.size() != 2)
      return fail(error, verb + " needs exactly <user>");
    out.kind = verb == "finish" ? RequestKind::kFinish
                                : RequestKind::kGetSchedule;
    if (!parse_int(tok[1], out.user)) return fail(error, "bad user id");
    return true;
  }

  if (verb == "ingest") {
    // ingest <user> <kind> <t> [...]
    if (tok.size() < 4)
      return fail(error, "ingest needs <user> <kind> <t> ...");
    out.kind = RequestKind::kIngest;
    if (!parse_int(tok[1], out.user)) return fail(error, "bad user id");
    service::Record& r = out.record;
    if (!parse_int(tok[3], r.time) || r.time < 0)
      return fail(error, "bad timestamp");
    const std::string& kind = tok[2];
    if (kind == "screen-on" || kind == "screen-off") {
      if (tok.size() != 4)
        return fail(error, "screen event takes only <t>");
      r.kind = kind == "screen-on" ? service::RecordKind::kScreenOn
                                   : service::RecordKind::kScreenOff;
      return true;
    }
    if (kind == "app") {
      if (tok.size() != 6)
        return fail(error, "app event needs <t> <app> <duration>");
      r.kind = service::RecordKind::kAppForeground;
      if (!parse_int(tok[4], r.app) || r.app < 0)
        return fail(error, "bad app id");
      if (!parse_int(tok[5], r.duration) || r.duration < 0)
        return fail(error, "bad duration");
      return true;
    }
    if (kind == "net") {
      if (tok.size() != 10)
        return fail(error,
                    "net event needs <t> <app> <duration> <down> <up> "
                    "<ui> <def>");
      r.kind = service::RecordKind::kNetworkActivity;
      if (!parse_int(tok[4], r.app) || r.app < 0)
        return fail(error, "bad app id");
      if (!parse_int(tok[5], r.duration) || r.duration < 0)
        return fail(error, "bad duration");
      if (!parse_int(tok[6], r.bytes_down) || r.bytes_down < 0)
        return fail(error, "bad bytes_down");
      if (!parse_int(tok[7], r.bytes_up) || r.bytes_up < 0)
        return fail(error, "bad bytes_up");
      if (!parse_bool(tok[8], r.user_initiated))
        return fail(error, "bad user_initiated flag");
      if (!parse_bool(tok[9], r.deferrable))
        return fail(error, "bad deferrable flag");
      return true;
    }
    return fail(error, "unknown ingest kind '" + kind + "'");
  }

  return fail(error, "unknown verb '" + verb + "'");
}

std::string format_request(const Request& request) {
  std::ostringstream out;
  switch (request.kind) {
    case RequestKind::kStats:
      return "stats";
    case RequestKind::kDrain:
      return "drain";
    case RequestKind::kShutdown:
      return "shutdown";
    case RequestKind::kFinish:
      out << "finish " << request.user;
      return out.str();
    case RequestKind::kGetSchedule:
      out << "get-schedule " << request.user;
      return out.str();
    case RequestKind::kUser:
      out << "user " << request.user << ' ' << request.train_days << ' '
          << request.num_days;
      for (const std::string& app : request.apps) out << ' ' << app;
      return out.str();
    case RequestKind::kIngest: {
      const service::Record& r = request.record;
      out << "ingest " << request.user << ' ';
      switch (r.kind) {
        case service::RecordKind::kScreenOn:
          out << "screen-on " << r.time;
          break;
        case service::RecordKind::kScreenOff:
          out << "screen-off " << r.time;
          break;
        case service::RecordKind::kAppForeground:
          out << "app " << r.time << ' ' << r.app << ' ' << r.duration;
          break;
        default:
          out << "net " << r.time << ' ' << r.app << ' ' << r.duration
              << ' ' << r.bytes_down << ' ' << r.bytes_up << ' '
              << (r.user_initiated ? 1 : 0) << ' '
              << (r.deferrable ? 1 : 0);
          break;
      }
      return out.str();
    }
  }
  return "";
}

std::string ok_response(const std::string& payload) {
  return payload.empty() ? "ok" : "ok " + payload;
}

std::string err_response(const std::string& message) {
  return "err " + message;
}

Request make_screen_request(UserId user, bool on, TimeMs t) {
  Request request;
  request.kind = RequestKind::kIngest;
  request.user = user;
  request.record.kind = on ? service::RecordKind::kScreenOn
                           : service::RecordKind::kScreenOff;
  request.record.time = t;
  return request;
}

Request make_app_request(UserId user, TimeMs t, AppId app,
                         DurationMs duration) {
  Request request;
  request.kind = RequestKind::kIngest;
  request.user = user;
  request.record.kind = service::RecordKind::kAppForeground;
  request.record.time = t;
  request.record.app = app;
  request.record.duration = duration;
  return request;
}

Request make_net_request(UserId user, TimeMs t, AppId app,
                         DurationMs duration, std::int64_t down,
                         std::int64_t up, bool user_initiated,
                         bool deferrable) {
  Request request;
  request.kind = RequestKind::kIngest;
  request.user = user;
  request.record.kind = service::RecordKind::kNetworkActivity;
  request.record.time = t;
  request.record.app = app;
  request.record.duration = duration;
  request.record.bytes_down = down;
  request.record.bytes_up = up;
  request.record.user_initiated = user_initiated;
  request.record.deferrable = deferrable;
  return request;
}

}  // namespace netmaster::net
