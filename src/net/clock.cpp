#include "net/clock.hpp"

#include <thread>

namespace netmaster::net {

void RealClock::sleep_until_ns(ClockNs deadline) {
  std::this_thread::sleep_until(epoch_ +
                                std::chrono::nanoseconds(deadline));
}

ClockNs SimClock::now_ns() {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_;
}

void SimClock::advance_to_ns(ClockNs t) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (t <= now_) return;
    now_ = t;
  }
  cv_.notify_all();
}

void SimClock::wait_until_ns(ClockNs deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [&] { return now_ >= deadline; });
}

}  // namespace netmaster::net
