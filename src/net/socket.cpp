#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace netmaster::net {

namespace {

[[noreturn]] void raise_errno(const char* what) {
  throw Error(std::string("net: ") + what + ": " +
              std::strerror(errno));
}

}  // namespace

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host,
                             std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("net: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    raise_errno("connect");
  }
  // The protocol is small request/response lines; latency beats
  // batching.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

void TcpStream::send_all(const char* data, std::size_t len) {
  NM_REQUIRE(valid(), "send on a closed stream");
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd_, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t TcpStream::recv_some(char* data, std::size_t len) {
  NM_REQUIRE(valid(), "recv on a closed stream");
  while (true) {
    const ssize_t n = ::recv(fd_, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A peer that vanished mid-conversation reads as EOF, not a
      // daemon-side failure.
      if (errno == ECONNRESET) return 0;
      raise_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

void TcpStream::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) raise_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int fd = fd_;
    fd_ = -1;
    ::close(fd);
    raise_errno("bind");
  }
  if (::listen(fd_, 64) != 0) {
    const int fd = fd_;
    fd_ = -1;
    ::close(fd);
    raise_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    raise_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpStream TcpListener::accept() {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(fd);
    }
    if (errno == EINTR) continue;
    // close() from another thread invalidates fd_ — orderly shutdown.
    return TcpStream();
  }
}

void TcpListener::close() {
  if (fd_ >= 0) {
    const int fd = fd_;
    fd_ = -1;
    // shutdown() first so a thread blocked in accept() wakes up.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace netmaster::net
