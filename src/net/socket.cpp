#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace netmaster::net {

namespace {

[[noreturn]] void raise_errno(const char* what) {
  throw Error(std::string("net: ") + what + ": " +
              std::strerror(errno));
}

}  // namespace

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1));
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host,
                             std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw Error("net: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    raise_errno("connect");
  }
  // The protocol is small request/response lines; latency beats
  // batching.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(fd);
}

void TcpStream::send_all(const char* data, std::size_t len) {
  const int fd = fd_.load(std::memory_order_relaxed);
  NM_REQUIRE(fd >= 0, "send on a closed stream");
  std::size_t sent = 0;
  while (sent < len) {
    const ssize_t n =
        ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t TcpStream::recv_some(char* data, std::size_t len) {
  const int fd = fd_.load(std::memory_order_relaxed);
  NM_REQUIRE(fd >= 0, "recv on a closed stream");
  while (true) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A peer that vanished mid-conversation reads as EOF, not a
      // daemon-side failure.
      if (errno == ECONNRESET) return 0;
      raise_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

void TcpStream::shutdown() noexcept {
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void TcpStream::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first so a thread racing into recv/send on the old
    // descriptor observes EOF rather than hanging (mirrors
    // TcpListener::close()).
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) raise_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd_.exchange(-1));
    raise_errno("bind");
  }
  if (::listen(fd_, 64) != 0) {
    ::close(fd_.exchange(-1));
    raise_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    raise_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);
}

TcpStream TcpListener::accept() {
  while (true) {
    const int lfd = fd_.load(std::memory_order_relaxed);
    if (lfd < 0) return TcpStream();  // closed — orderly shutdown
    const int fd = ::accept(lfd, nullptr, nullptr);
    if (fd >= 0) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpStream(fd);
    }
    switch (errno) {
      case EINTR:
      case ECONNABORTED:  // peer gave up between SYN and accept
        continue;
      case EMFILE:
      case ENFILE:
      case ENOBUFS:
      case ENOMEM:
        // Resource exhaustion is transient under load; back off
        // instead of permanently abandoning the accept loop.
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      case EBADF:
      case EINVAL:
        // close() from another thread invalidated the descriptor —
        // orderly shutdown.
        return TcpStream();
      default:
        raise_errno("accept");
    }
  }
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) {
    // shutdown() first so a thread blocked in accept() wakes up.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace netmaster::net
