// Virtual clock for the daemon layer.
//
// Everything under src/daemon/ that needs to *wait* or to *stamp* a
// latency goes through a net::Clock instead of reading the wall clock
// directly, so daemon tests and the load generator can run entirely in
// deterministic sim-time. Two implementations:
//
//   RealClock — monotonic wall time (std::chrono::steady_clock) since
//               construction; sleep really sleeps. The bench and the
//               netmasterd binary use it.
//   SimClock  — a manually-advanced virtual time; sleep_for advances
//               the virtual time instantly (and wakes any thread
//               blocked in wait_until). Tests use it so a "paced"
//               load-generator run finishes in microseconds and
//               produces the same event interleaving every run.
//
// The simulated *trace* time (TimeMs event timestamps) is a separate
// axis: the daemon is event-driven and derives day boundaries from the
// timestamps it ingests, never from this clock. The clock only paces
// deliveries and stamps service latencies.
//
// Audit note (ROADMAP item 1 satellite): service/online_sim and the
// rest of src/service/ contain no direct wall-clock reads — they are
// pure trace-time simulators — so only the daemon layer needed the
// abstraction.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "common/time.hpp"

namespace netmaster::net {

/// Nanoseconds since the clock's epoch (construction for RealClock,
/// 0 for SimClock).
using ClockNs = std::int64_t;

class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds since the clock's epoch.
  virtual ClockNs now_ns() = 0;

  /// Blocks the caller until now_ns() >= deadline (RealClock) or until
  /// the virtual time is advanced past it (SimClock).
  virtual void sleep_until_ns(ClockNs deadline) = 0;

  void sleep_for_ns(ClockNs delta) { sleep_until_ns(now_ns() + delta); }
};

/// Monotonic wall time since construction.
class RealClock final : public Clock {
 public:
  RealClock() : epoch_(std::chrono::steady_clock::now()) {}

  ClockNs now_ns() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void sleep_until_ns(ClockNs deadline) override;

 private:
  std::chrono::steady_clock::time_point epoch_;
};

/// Manually-advanced virtual time. Thread-safe: one thread may advance
/// while others sleep. A sleep_until_ns from the *only* running thread
/// advances the clock itself (time passes because someone waited on
/// it), which is what makes single-threaded paced tests deterministic
/// and instant.
class SimClock final : public Clock {
 public:
  explicit SimClock(ClockNs start = 0) : now_(start) {}

  ClockNs now_ns() override;

  /// Jumps the virtual time forward to `t` (no-op when in the past)
  /// and wakes sleepers whose deadline passed.
  void advance_to_ns(ClockNs t);

  /// sleep == advance: the virtual time immediately reaches the
  /// deadline. Multi-threaded users that want a sleeper to genuinely
  /// block must drive advance_to_ns from another thread and use
  /// wait_until_ns instead.
  void sleep_until_ns(ClockNs deadline) override { advance_to_ns(deadline); }

  /// Blocks until another thread advances the clock past `deadline`.
  void wait_until_ns(ClockNs deadline);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  ClockNs now_ = 0;
};

}  // namespace netmaster::net
