// Duty-cycle radio sleep schemes (§IV-C.2, Fig. 10a/b).
//
// During screen-off periods outside predicted user-active slots,
// NetMaster keeps the radio off and wakes it periodically so "Special
// Apps" can use the network, covering imperfect predictions and
// accidental activities. The paper borrows the duty-cycle idea from
// low-power MAC protocols (B-MAC lineage) and adds an exponential
// back-off: after a fruitless wake-up the sleep interval doubles
// (T, 2T, 4T, ...), resetting to T whenever activity is detected.
// Fixed and random sleep schemes are implemented for the Fig. 10b
// comparison.
#pragma once

#include <cstdint>
#include <vector>

#include "common/interval.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"

namespace netmaster::duty {

enum class SleepScheme {
  kExponential,  ///< T, 2T, 4T, ... capped; resets on activity
  kFixed,        ///< constant T
  kRandom,       ///< uniform in [0.5T, 1.5T]
};

struct DutyConfig {
  SleepScheme scheme = SleepScheme::kExponential;
  DurationMs initial_sleep_ms = 30 * kMsPerSecond;  ///< the paper's 30 s
  DurationMs wake_window_ms = 2 * kMsPerSecond;     ///< radio-on probe
  /// Back-off cap as a multiple of the initial interval (exponential
  /// scheme only). 2^6 = 64x -> 32 min max sleep at T = 30 s.
  int max_backoff_exponent = 6;
  std::uint64_t seed = 0;  ///< randomness for kRandom
};

/// One radio wake-up probe.
struct WakeEvent {
  TimeMs time = 0;          ///< wake instant
  DurationMs window = 0;    ///< how long the radio stayed on
  bool productive = false;  ///< activity was served during the window
};

/// Stateful duty cycler. Drive it with `advance_idle` across an idle
/// window to collect the wake schedule, and call `notify_activity`
/// whenever the radio was needed (resets the exponential back-off).
class DutyCycler {
 public:
  explicit DutyCycler(const DutyConfig& config);

  /// Resets back-off state and re-bases the schedule at `now`.
  void reset(TimeMs now);

  /// The next wake-up instant strictly after the current position.
  TimeMs next_wake() const { return next_wake_; }

  /// Marks the current wake as fruitless and schedules the next one.
  void advance_fruitless();

  /// Marks activity at the current wake (or an externally-forced radio
  /// power-on at `now`): the back-off resets and the next wake is one
  /// initial interval after `now`.
  void notify_activity(TimeMs now);

  const DutyConfig& config() const { return config_; }
  DurationMs current_sleep() const { return current_sleep_; }

 private:
  void schedule_from(TimeMs from);

  DutyConfig config_;
  Rng rng_;
  DurationMs current_sleep_;
  int backoff_exponent_ = 0;
  TimeMs next_wake_ = 0;
};

/// Simulates a duty cycler over an idle window with no activity at all
/// (the Fig. 10a/b setting) and returns every wake event. The returned
/// wakes all fall inside [window.begin, window.end).
std::vector<WakeEvent> simulate_idle_window(const DutyConfig& config,
                                            const Interval& window);

/// Total radio-on time contributed by a wake schedule.
DurationMs total_wake_time(const std::vector<WakeEvent>& wakes);

}  // namespace netmaster::duty
