#include "duty/duty_cycle.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace netmaster::duty {

DutyCycler::DutyCycler(const DutyConfig& config)
    : config_(config), rng_(config.seed),
      current_sleep_(config.initial_sleep_ms) {
  NM_REQUIRE(config.initial_sleep_ms > 0, "sleep interval must be positive");
  NM_REQUIRE(config.wake_window_ms >= 0, "wake window must be non-negative");
  NM_REQUIRE(config.max_backoff_exponent >= 0,
             "back-off exponent must be non-negative");
  schedule_from(0);
}

void DutyCycler::reset(TimeMs now) {
  backoff_exponent_ = 0;
  current_sleep_ = config_.initial_sleep_ms;
  schedule_from(now);
}

void DutyCycler::schedule_from(TimeMs from) {
  switch (config_.scheme) {
    case SleepScheme::kExponential:
      current_sleep_ = config_.initial_sleep_ms
                       << std::min(backoff_exponent_,
                                   config_.max_backoff_exponent);
      break;
    case SleepScheme::kFixed:
      current_sleep_ = config_.initial_sleep_ms;
      break;
    case SleepScheme::kRandom:
      current_sleep_ = static_cast<DurationMs>(rng_.uniform(
          0.5 * static_cast<double>(config_.initial_sleep_ms),
          1.5 * static_cast<double>(config_.initial_sleep_ms)));
      current_sleep_ = std::max<DurationMs>(current_sleep_, 1);
      break;
  }
  next_wake_ = from + current_sleep_;
}

void DutyCycler::advance_fruitless() {
  const TimeMs wake_end = next_wake_ + config_.wake_window_ms;
  if (config_.scheme == SleepScheme::kExponential) ++backoff_exponent_;
  schedule_from(wake_end);
}

void DutyCycler::notify_activity(TimeMs now) {
  backoff_exponent_ = 0;
  schedule_from(now);
}

std::vector<WakeEvent> simulate_idle_window(const DutyConfig& config,
                                            const Interval& window) {
  NM_REQUIRE(!window.empty(), "idle window must be non-empty");
  DutyCycler cycler(config);
  cycler.reset(window.begin);

  std::vector<WakeEvent> wakes;
  while (cycler.next_wake() < window.end) {
    const TimeMs wake = cycler.next_wake();
    const DurationMs win =
        std::min<DurationMs>(config.wake_window_ms, window.end - wake);
    wakes.push_back({wake, win, false});
    cycler.advance_fruitless();
  }
  return wakes;
}

DurationMs total_wake_time(const std::vector<WakeEvent>& wakes) {
  DurationMs total = 0;
  for (const WakeEvent& w : wakes) total += w.window;
  return total;
}

}  // namespace netmaster::duty
