// Work-stealing job system: a fixed worker pool running dependency
// graphs of tasks.
//
// Scheduling model
//   - A WorkerPool owns W worker slots. Slots 1..W-1 are dedicated
//     threads; slot 0 belongs to whichever thread is inside run() —
//     the caller participates instead of blocking, so a pool of 1 runs
//     everything inline on the caller with zero thread handoffs.
//   - Each slot has a deque. Initial ready tasks are seeded round-robin
//     across the deques by submission index; an owner takes from the
//     front of its own deque (FIFO over seeds, LIFO over continuations
//     it just unlocked — the cache-hot order), and an idle worker
//     steals from the *back* of a victim's deque (the work most remote
//     from the victim's current locality).
//   - A task's completion decrements its dependents' pending counters;
//     a dependent reaching zero is pushed onto the completing worker's
//     own deque, so per-user chains (prepare -> mine -> cells) run
//     back-to-back on one worker unless someone steals them.
//
// Determinism contract
//   Tasks communicate only through their own pre-allocated result
//   slots: a task may write state no other task reads until after the
//   graph completes, or state only its *dependents* read. Under that
//   discipline results are bit-identical regardless of worker count,
//   steal order, or how often a run is repeated — the scheduler decides
//   *when* a task runs, never *what* it computes. The eval stack and
//   the parallel_for shim both follow it (per-cell result slots, one
//   reduce after run()), which is what keeps the fleet/sweep goldens
//   exact at every thread count.
//
// Failure semantics
//   A throwing task poisons its transitive dependents (they are
//   cancelled, never run) but independent tasks run to completion. The
//   failure with the lowest *submission index* — deterministic in the
//   graph, not in thread timing — is rethrown from run().
//
// Observability
//   jobs.tasks / jobs.steals / jobs.graphs / jobs.cancelled counters,
//   a jobs.queue_depth gauge, and a per-run jobs.worker_utilization
//   histogram. Every task flushes its thread-local obs spans before it
//   signals completion, so a metrics snapshot taken after run() sees
//   every span even though pool workers never exit.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace netmaster::jobs {

class WorkerPool;

/// Index of a task within its TaskGraph, in submission order.
using TaskId = std::size_t;

/// A single-run dependency graph of void() tasks. Build it (add /
/// add_dependency), hand it to WorkerPool::run(), then read results
/// from wherever the tasks wrote them. Graphs must be acyclic
/// (validated before the run) and are not reusable.
class TaskGraph {
 public:
  TaskGraph() = default;
  TaskGraph(const TaskGraph&) = delete;
  TaskGraph& operator=(const TaskGraph&) = delete;

  /// Adds a task with no dependencies (yet). Returns its id.
  TaskId add(std::function<void()> fn);

  /// Adds a task that runs only after every id in `deps` completed.
  TaskId add_after(std::initializer_list<TaskId> deps,
                   std::function<void()> fn);

  /// Declares that `before` must complete before `after` starts.
  /// Duplicate edges are allowed and counted once each.
  void add_dependency(TaskId before, TaskId after);

  std::size_t size() const { return tasks_.size(); }
  bool ran() const { return ran_; }

  // --- post-run introspection (valid after WorkerPool::run returns or
  // throws) ---

  /// Wall time of the run, caller-side.
  double wall_ms() const { return wall_ms_; }
  /// Worker slots the run was prepared for (the pool's width).
  std::size_t num_worker_slots() const { return num_slots_; }
  /// Total task execution time attributed to worker slot w.
  double worker_busy_ms(std::size_t w) const;
  /// True when the task was cancelled by a failing dependency.
  bool was_cancelled(TaskId id) const;

 private:
  friend class WorkerPool;

  struct Task {
    std::function<void()> fn;
    std::vector<std::uint32_t> dependents;
    std::atomic<std::uint32_t> pending{0};
    std::atomic<bool> cancelled{false};
  };

  /// Resolves run state (remaining count, busy slots) and validates
  /// acyclicity. Called by the pool, caller-side.
  void prepare(unsigned num_slots);
  /// Records the lowest-submission-index failure.
  void record_error(std::size_t index) noexcept;
  /// Records utilization telemetry and rethrows the stored failure.
  void finish();

  // Tasks live in a deque: atomics are not movable and task addresses
  // must stay stable while workers hold references.
  std::deque<Task> tasks_;
  bool ran_ = false;

  // Run state.
  std::atomic<std::size_t> remaining_{0};
  std::atomic<bool> done_{false};
  std::unique_ptr<std::atomic<std::int64_t>[]> busy_ns_;
  std::size_t num_slots_ = 0;
  double wall_ms_ = 0.0;
  std::mutex error_mutex_;
  std::size_t first_error_index_ = 0;
  std::exception_ptr first_error_;
};

/// Fixed pool of worker slots executing TaskGraphs (see file comment
/// for the scheduling and determinism model). `workers` is the total
/// slot count including the caller's; a pool of 1 spawns no threads.
class WorkerPool {
 public:
  explicit WorkerPool(unsigned workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  unsigned num_workers() const { return num_workers_; }

  /// Runs the graph to completion; the calling thread participates as
  /// a worker. Rethrows the lowest-submission-index task failure, after
  /// every non-poisoned task finished. Safe to call from inside a task
  /// of this or another pool (the nested caller helps execute queued
  /// work while it waits — no worker is ever parked on a nested graph).
  void run(TaskGraph& graph);

  /// The process-wide pool, sized default_max_threads() at first use.
  static WorkerPool& shared();

 private:
  struct Item {
    TaskGraph* graph;
    std::uint32_t task;
  };
  struct WorkerDeque;

  bool try_pop(unsigned slot, Item& out);
  void push_local(unsigned slot, const Item& item);
  void execute(const Item& item, unsigned slot);
  void worker_loop(unsigned slot);
  void notify_all_workers();

  unsigned num_workers_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> threads_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::atomic<std::size_t> queued_{0};
  std::atomic<bool> stop_{false};
};

/// Runs `graph` honoring a parallel_for-style thread cap: 0 means
/// default_max_threads(). When the cap does not bind below the shared
/// pool's width the shared pool runs it; a smaller explicit cap gets a
/// temporary pool of exactly that many workers (same cost shape as the
/// thread fan-out the barrier parallel_for used to pay per call).
void run_graph(TaskGraph& graph, unsigned max_threads = 0);

}  // namespace netmaster::jobs
