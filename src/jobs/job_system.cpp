#include "jobs/job_system.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/error.hpp"
#include "jobs/threads.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace netmaster::jobs {

namespace {

using Clock = std::chrono::steady_clock;

/// Cached instrument references — resolved once per process.
struct JobMetrics {
  obs::Counter& tasks;
  obs::Counter& steals;
  obs::Counter& graphs;
  obs::Counter& cancelled;
  obs::Gauge& queue_depth;
  obs::Histogram& worker_utilization;

  static JobMetrics& get() {
    static JobMetrics m{
        obs::Registry::global().counter("jobs.tasks"),
        obs::Registry::global().counter("jobs.steals"),
        obs::Registry::global().counter("jobs.graphs"),
        obs::Registry::global().counter("jobs.cancelled"),
        obs::Registry::global().gauge("jobs.queue_depth"),
        obs::Registry::global().histogram("jobs.worker_utilization",
                                          obs::fraction_bounds()),
    };
    return m;
  }
};

/// Which pool (if any) the current thread is a worker of, and its slot.
/// Dedicated workers set it for their lifetime; external callers run as
/// slot 0 of whatever pool they hand a graph to.
struct WorkerTls {
  WorkerPool* pool = nullptr;
  unsigned slot = 0;
};
thread_local WorkerTls g_worker_tls;

}  // namespace

// ---------------------------------------------------------------------------
// TaskGraph

TaskId TaskGraph::add(std::function<void()> fn) {
  NM_REQUIRE(!ran_, "TaskGraph::add after the graph ran");
  NM_REQUIRE(static_cast<bool>(fn), "TaskGraph::add requires a callable");
  tasks_.emplace_back();
  tasks_.back().fn = std::move(fn);
  return tasks_.size() - 1;
}

TaskId TaskGraph::add_after(std::initializer_list<TaskId> deps,
                            std::function<void()> fn) {
  const TaskId id = add(std::move(fn));
  for (const TaskId dep : deps) add_dependency(dep, id);
  return id;
}

void TaskGraph::add_dependency(TaskId before, TaskId after) {
  NM_REQUIRE(!ran_, "TaskGraph::add_dependency after the graph ran");
  NM_REQUIRE(before < tasks_.size() && after < tasks_.size(),
             "TaskGraph dependency references an unknown task");
  NM_REQUIRE(before != after, "a task cannot depend on itself");
  tasks_[after].pending.fetch_add(1, std::memory_order_relaxed);
  tasks_[before].dependents.push_back(static_cast<std::uint32_t>(after));
}

void TaskGraph::prepare(unsigned num_slots) {
  NM_REQUIRE(!ran_, "a TaskGraph can only run once");
  ran_ = true;
  num_slots_ = num_slots;
  remaining_.store(tasks_.size(), std::memory_order_relaxed);
  done_.store(tasks_.empty(), std::memory_order_relaxed);
  first_error_index_ = std::numeric_limits<std::size_t>::max();
  first_error_ = nullptr;
  busy_ns_ = std::make_unique<std::atomic<std::int64_t>[]>(num_slots);
  for (std::size_t w = 0; w < num_slots; ++w) {
    busy_ns_[w].store(0, std::memory_order_relaxed);
  }

  // Acyclicity check (Kahn): a cycle would make the run hang forever,
  // so it is rejected up front, deterministically.
  std::vector<std::uint32_t> pending(tasks_.size());
  std::vector<std::uint32_t> ready;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    pending[i] = tasks_[i].pending.load(std::memory_order_relaxed);
    if (pending[i] == 0) ready.push_back(static_cast<std::uint32_t>(i));
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    const std::uint32_t v = ready.back();
    ready.pop_back();
    ++visited;
    for (const std::uint32_t d : tasks_[v].dependents) {
      if (--pending[d] == 0) ready.push_back(d);
    }
  }
  NM_REQUIRE(visited == tasks_.size(),
             "task graph contains a dependency cycle");
}

void TaskGraph::record_error(std::size_t index) noexcept {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  if (index < first_error_index_) {
    first_error_index_ = index;
    first_error_ = std::current_exception();
  }
}

void TaskGraph::finish() {
  if (wall_ms_ > 0.0) {
    JobMetrics& metrics = JobMetrics::get();
    for (std::size_t w = 0; w < num_slots_; ++w) {
      const double busy =
          static_cast<double>(busy_ns_[w].load(std::memory_order_relaxed)) *
          1e-6;
      if (busy > 0.0) {
        metrics.worker_utilization.add(std::min(1.0, busy / wall_ms_));
      }
    }
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

double TaskGraph::worker_busy_ms(std::size_t w) const {
  NM_REQUIRE(w < num_slots_, "worker_busy_ms slot out of range");
  return static_cast<double>(busy_ns_[w].load(std::memory_order_relaxed)) *
         1e-6;
}

bool TaskGraph::was_cancelled(TaskId id) const {
  NM_REQUIRE(id < tasks_.size(), "was_cancelled task id out of range");
  return tasks_[id].cancelled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// WorkerPool

struct WorkerPool::WorkerDeque {
  std::mutex mutex;
  std::deque<Item> items;
};

WorkerPool::WorkerPool(unsigned workers) : num_workers_(workers) {
  NM_REQUIRE(workers >= 1, "a worker pool needs at least one slot");
  deques_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  // Slot 0 is the caller's; only 1..W-1 get dedicated threads.
  threads_.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(wake_mutex_);
    stop_.store(true, std::memory_order_relaxed);
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool(std::max(1u, default_max_threads()));
  return pool;
}

void WorkerPool::notify_all_workers() {
  // Empty critical section: orders the notify against a waiter that
  // checked its predicate and is about to sleep.
  { const std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_all();
}

void WorkerPool::push_local(unsigned slot, const Item& item) {
  {
    const std::lock_guard<std::mutex> lock(deques_[slot]->mutex);
    deques_[slot]->items.push_front(item);
  }
  queued_.fetch_add(1, std::memory_order_release);
  JobMetrics::get().queue_depth.add(1.0);
  { const std::lock_guard<std::mutex> lock(wake_mutex_); }
  wake_cv_.notify_one();
}

bool WorkerPool::try_pop(unsigned slot, Item& out) {
  // Own deque first, from the front (continuations LIFO, seeds FIFO).
  {
    WorkerDeque& own = *deques_[slot];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.items.empty()) {
      out = own.items.front();
      own.items.pop_front();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      JobMetrics::get().queue_depth.add(-1.0);
      return true;
    }
  }
  // Steal from the back of the first non-empty victim.
  for (unsigned offset = 1; offset < num_workers_; ++offset) {
    WorkerDeque& victim = *deques_[(slot + offset) % num_workers_];
    const std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.items.empty()) {
      out = victim.items.back();
      victim.items.pop_back();
      queued_.fetch_sub(1, std::memory_order_relaxed);
      JobMetrics& metrics = JobMetrics::get();
      metrics.queue_depth.add(-1.0);
      metrics.steals.add(1);
      return true;
    }
  }
  return false;
}

void WorkerPool::execute(const Item& item, unsigned slot) {
  TaskGraph& graph = *item.graph;
  TaskGraph::Task& task = graph.tasks_[item.task];
  JobMetrics& metrics = JobMetrics::get();

  const auto t0 = Clock::now();
  bool poisoned = task.cancelled.load(std::memory_order_relaxed);
  if (poisoned) {
    metrics.cancelled.add(1);
  } else {
    try {
      task.fn();
    } catch (...) {
      graph.record_error(item.task);
      poisoned = true;
    }
  }
  // Poison propagates *before* dependents can be released below.
  if (poisoned) {
    for (const std::uint32_t d : task.dependents) {
      graph.tasks_[d].cancelled.store(true, std::memory_order_relaxed);
    }
  }
  const std::int64_t busy_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count();
  graph.busy_ns_[slot].fetch_add(busy_ns, std::memory_order_relaxed);
  metrics.tasks.add(1);

  // Pool workers never exit, so per-thread span aggregates must merge
  // before this task counts as complete — a snapshot taken after run()
  // then sees every span (the join-visibility contract parallel_for's
  // thread fan-out used to provide for free).
  obs::flush_thread_spans();

  for (const std::uint32_t d : task.dependents) {
    if (graph.tasks_[d].pending.fetch_sub(1, std::memory_order_acq_rel) ==
        1) {
      push_local(slot, Item{&graph, d});
    }
  }
  if (graph.remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    graph.done_.store(true, std::memory_order_release);
    notify_all_workers();
  }
}

void WorkerPool::worker_loop(unsigned slot) {
  g_worker_tls = WorkerTls{this, slot};
  Item item{};
  while (true) {
    if (try_pop(slot, item)) {
      execute(item, slot);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_relaxed)) return;
  }
}

void WorkerPool::run(TaskGraph& graph) {
  const auto start = Clock::now();
  JobMetrics& metrics = JobMetrics::get();
  metrics.graphs.add(1);
  graph.prepare(num_workers_);
  if (graph.size() == 0) {
    graph.wall_ms_ = 0.0;
    return;
  }

  // Seed the initial ready set round-robin by submission index: pushed
  // to the *back*, so each owner drains its seeds in index order while
  // thieves take from the opposite end.
  std::size_t seeded = 0;
  for (std::size_t i = 0; i < graph.size(); ++i) {
    if (graph.tasks_[i].pending.load(std::memory_order_relaxed) != 0) {
      continue;
    }
    WorkerDeque& dq = *deques_[i % num_workers_];
    const std::lock_guard<std::mutex> lock(dq.mutex);
    dq.items.push_back(Item{&graph, static_cast<std::uint32_t>(i)});
    ++seeded;
  }
  queued_.fetch_add(seeded, std::memory_order_release);
  metrics.queue_depth.add(static_cast<double>(seeded));
  notify_all_workers();

  // Participate: the caller is worker slot 0 (or keeps its own slot
  // when it already is a worker of this pool — the nested case). While
  // its graph is pending it executes whatever work is queued, which
  // may belong to other graphs on this pool; that is what makes nested
  // run() calls deadlock-free.
  const unsigned slot =
      g_worker_tls.pool == this ? g_worker_tls.slot : 0;
  Item item{};
  while (!graph.done_.load(std::memory_order_acquire)) {
    if (try_pop(slot, item)) {
      execute(item, slot);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock, [&] {
      return graph.done_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }

  graph.wall_ms_ =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  graph.finish();
}

void run_graph(TaskGraph& graph, unsigned max_threads) {
  unsigned requested =
      max_threads != 0 ? max_threads : default_max_threads();
  if (requested == 0) requested = 1;
  WorkerPool& pool = WorkerPool::shared();
  if (requested >= pool.num_workers()) {
    pool.run(graph);
    return;
  }
  // The explicit cap binds below the shared pool: honor it with a
  // temporary pool (graphs smaller than the cap need fewer slots).
  const unsigned workers = static_cast<unsigned>(std::min<std::size_t>(
      requested, std::max<std::size_t>(graph.size(), 1)));
  WorkerPool local(workers);
  local.run(graph);
}

}  // namespace netmaster::jobs
