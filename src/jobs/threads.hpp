// Worker-count resolution shared by the job system and parallel_for.
//
// The default worker count comes from the NETMASTER_THREADS environment
// variable (read once per process) falling back to hardware
// concurrency. Tests exercising thread-count matrices inside one binary
// can't re-set the environment, so set_default_max_threads() provides
// an explicit process-wide override that wins over both.
#pragma once

#include <atomic>
#include <cstdlib>
#include <thread>

namespace netmaster {

namespace detail {
inline std::atomic<unsigned>& thread_override() {
  static std::atomic<unsigned> value{0};
  return value;
}
}  // namespace detail

/// Overrides default_max_threads() for the whole process (0 clears the
/// override and restores the NETMASTER_THREADS / hardware default).
/// Intended for tests running worker-count matrices in one binary; the
/// shared worker pool is sized from the value in effect at first use.
inline void set_default_max_threads(unsigned n) {
  detail::thread_override().store(n, std::memory_order_relaxed);
}

/// Default worker cap when a caller passes 0: the explicit override
/// when set, else the NETMASTER_THREADS environment variable (read once
/// per process) when set to a positive integer, else
/// hardware_concurrency. Lets CI rerun the whole suite single-threaded
/// to flush nondeterminism without plumbing a thread count through
/// every entry point.
inline unsigned default_max_threads() {
  const unsigned forced =
      detail::thread_override().load(std::memory_order_relaxed);
  if (forced != 0) return forced;
  static const unsigned cached = [] {
    if (const char* env = std::getenv("NETMASTER_THREADS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) return static_cast<unsigned>(v);
    }
    return std::thread::hardware_concurrency();
  }();
  return cached;
}

}  // namespace netmaster
