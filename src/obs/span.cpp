#include "obs/span.hpp"

#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#if defined(__linux__) || defined(__APPLE__)
#include <time.h>
#endif

namespace netmaster::obs {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Per-thread span state for one registry: the open-span stack (for
/// parent attribution) and the finished-span aggregates awaiting merge.
struct RegistrySink {
  std::vector<std::string> stack;
  std::map<std::pair<std::string, std::string>, SpanStats> pending;
};

struct ThreadSinks {
  std::unordered_map<Registry*, RegistrySink> by_registry;

  ~ThreadSinks() { flush(); }

  void flush() {
    for (auto& [registry, sink] : by_registry) {
      if (sink.pending.empty()) continue;
      // A test-local registry may die before this thread does; the
      // alive check keeps the late flush from touching freed memory.
      if (Registry::is_alive(registry)) registry->merge_spans(sink.pending);
      sink.pending.clear();
    }
  }
};

ThreadSinks& thread_sinks() {
  thread_local ThreadSinks sinks;
  return sinks;
}

}  // namespace

double thread_cpu_ms() {
#if defined(__linux__) || defined(__APPLE__)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) * 1e3 +
           static_cast<double>(ts.tv_nsec) * 1e-6;
  }
#endif
  return 0.0;
}

ScopedTimer::ScopedTimer(Histogram* sink)
    : start_(Clock::now()), sink_(sink) {}

ScopedTimer::~ScopedTimer() { stop(); }

double ScopedTimer::elapsed_ms() const {
  if (stopped_) return elapsed_ms_;
  return ms_between(start_, Clock::now());
}

double ScopedTimer::stop() {
  if (!stopped_) {
    elapsed_ms_ = ms_between(start_, Clock::now());
    stopped_ = true;
    if (sink_ != nullptr) sink_->add(elapsed_ms_);
  }
  return elapsed_ms_;
}

SpanScope::SpanScope(std::string name)
    : SpanScope(Registry::global(), std::move(name)) {}

SpanScope::SpanScope(Registry& registry, std::string name)
    : registry_(&registry),
      name_(std::move(name)),
      wall_start_(Clock::now()),
      cpu_start_ms_(thread_cpu_ms()) {
  thread_sinks().by_registry[registry_].stack.push_back(name_);
}

SpanScope::~SpanScope() {
  const double wall = ms_between(wall_start_, Clock::now());
  const double cpu = thread_cpu_ms() - cpu_start_ms_;
  RegistrySink& sink = thread_sinks().by_registry[registry_];
  // Unwind to this span even if an exception skipped inner pops.
  while (!sink.stack.empty() && sink.stack.back() != name_) {
    sink.stack.pop_back();
  }
  if (!sink.stack.empty()) sink.stack.pop_back();
  const std::string parent = sink.stack.empty() ? "" : sink.stack.back();
  SpanStats& agg = sink.pending[{name_, parent}];
  ++agg.count;
  agg.wall_ms += wall;
  agg.cpu_ms += cpu > 0.0 ? cpu : 0.0;
  if (wall > agg.max_wall_ms) agg.max_wall_ms = wall;
}

void flush_thread_spans() { thread_sinks().flush(); }

}  // namespace netmaster::obs
