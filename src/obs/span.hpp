// RAII timing: scoped wall-clock timers and lightweight spans.
//
// A SpanScope measures one named region (wall + thread-CPU time) and
// attributes it to the enclosing span on the same thread (parent
// tracking via a per-thread stack). Finished spans are aggregated into
// a thread-local table — the hot path takes no locks and allocates at
// most a map node per distinct (name, parent) pair per thread — and
// merged into the owning Registry when the thread exits or when
// flush_thread_spans() is called (exporters do this automatically).
// Spans recorded by threads that are still running and have not
// flushed are invisible to a snapshot; parallel_for joins its workers,
// so fleet/bench exports always see every worker's spans.
#pragma once

#include <chrono>
#include <string>

#include "obs/metrics.hpp"

namespace netmaster::obs {

/// Wall-clock milliseconds of thread CPU time consumed so far.
double thread_cpu_ms();

/// Plain RAII stopwatch. With a Histogram sink, the elapsed wall time
/// is recorded (once) on stop() or destruction; without one it is just
/// a measurement you read via elapsed_ms()/stop().
class ScopedTimer {
 public:
  ScopedTimer() : ScopedTimer(nullptr) {}
  explicit ScopedTimer(Histogram& sink) : ScopedTimer(&sink) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Milliseconds since construction; keeps the timer running.
  double elapsed_ms() const;
  /// Stops the timer, records into the sink (if any), returns the
  /// elapsed milliseconds. Idempotent.
  double stop();

 private:
  explicit ScopedTimer(Histogram* sink);

  std::chrono::steady_clock::time_point start_;
  Histogram* sink_;
  bool stopped_ = false;
  double elapsed_ms_ = 0.0;
};

/// RAII span: name + parent (enclosing span on this thread) + wall and
/// thread-CPU time, aggregated per thread and merged into the registry
/// (see file comment for the flush model).
class SpanScope {
 public:
  /// Records into Registry::global().
  explicit SpanScope(std::string name);
  SpanScope(Registry& registry, std::string name);
  ~SpanScope();

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Registry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point wall_start_;
  double cpu_start_ms_;
};

/// Merges the calling thread's span aggregates into their registries.
/// Cheap no-op when the thread has recorded nothing since last flush.
void flush_thread_spans();

}  // namespace netmaster::obs
