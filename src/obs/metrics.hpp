// Observability core: a thread-safe metrics registry.
//
// Instruments are cheap enough for hot paths: counters and gauges are
// single relaxed atomics, histograms are fixed-bucket arrays of atomics
// (lock-free add), and the streaming P² quantile estimator is a
// constant-space single-owner sketch. The registry itself takes a mutex
// only on instrument *registration*; call sites cache the returned
// reference (instruments live as long as their registry), so steady
// state never touches the registry lock.
//
// `Registry::global()` is the process-wide registry every subsystem
// records into; tests construct private registries for isolation.
// Snapshots are exported by obs/export.hpp (human table, JSON lines).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace netmaster::obs {

/// Monotonic event counter. add() is a relaxed atomic increment.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value; add() is a CAS loop.
class Gauge {
 public:
  void set(double x) noexcept { value_.store(x, std::memory_order_relaxed); }
  void add(double x) noexcept;
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: one atomic per bucket plus streaming
/// count/sum/min/max, all updated lock-free. Bucket i counts samples
/// in (bounds[i-1], bounds[i]] with an implicit +inf overflow bucket;
/// the exporters accumulate these into Prometheus-style cumulative
/// `le` counts. NaN samples are rejected (counted, never binned) so a
/// poisoned measurement cannot corrupt the sketch.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void add(double x) noexcept;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i of bounds().size() + 1; the last is the +inf overflow.
  std::uint64_t bucket_count(std::size_t i) const;
  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// 0 when empty.
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;

  /// Quantile estimate by linear interpolation inside the covering
  /// bucket, clamped to the observed [min, max]. q in [0, 1]; 0 when
  /// the histogram is empty.
  double quantile(double q) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm):
/// constant space, no stored samples. Exact below 5 observations,
/// then a 5-marker parabolic sketch. Single-owner: add() is NOT
/// thread-safe — aggregate per thread (or behind a caller lock) and
/// keep the concurrent path on Histogram instead.
class P2Quantile {
 public:
  /// q in (0, 1), e.g. 0.5 for the median.
  explicit P2Quantile(double q);

  void add(double x);  // NaN samples are ignored
  std::size_t count() const { return count_; }
  /// Current estimate; 0 when no samples yet.
  double value() const;

 private:
  double q_;
  std::size_t count_ = 0;
  double height_[5];   // marker heights (ascending)
  double pos_[5];      // actual marker positions (1-based)
  double want_[5];     // desired marker positions
  double dwant_[5];    // desired-position increments per sample
};

/// Standard bucket layouts.
std::vector<double> latency_bounds_ms();  ///< ~geometric 0.05 ms … 10 s
std::vector<double> fraction_bounds();    ///< 0.1 … 1.0 in tenths

/// Wall/CPU aggregate of one span name under one parent.
struct SpanStats {
  std::uint64_t count = 0;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  double max_wall_ms = 0.0;

  void merge(const SpanStats& other);
};

/// Named-instrument registry. Lookup registers on first use and
/// returns a reference that stays valid for the registry's lifetime.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry (never destroyed).
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is used only on first registration; later lookups
  /// of the same name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  /// Folds a thread's span aggregates in (called by obs/span.cpp when
  /// a thread flushes; key is {name, parent}).
  void merge_spans(
      const std::map<std::pair<std::string, std::string>, SpanStats>& spans);

  // ---- Snapshot access (exporters). Instrument pointers are stable;
  // span rows are copied out under the lock. ----
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    const Histogram* histogram = nullptr;
  };
  struct SpanRow {
    std::string name;
    std::string parent;
    SpanStats stats;
  };
  std::vector<CounterRow> counter_rows() const;
  std::vector<GaugeRow> gauge_rows() const;
  std::vector<HistogramRow> histogram_rows() const;
  std::vector<SpanRow> span_rows() const;

  /// Test helper: zeroes counters/gauges and drops histogram contents
  /// and span aggregates. Registered instrument references stay valid.
  void reset();

  /// True while `r` has not been destroyed. Lets per-thread span sinks
  /// (which may outlive a test-local registry) skip a dead target
  /// instead of dereferencing it.
  static bool is_alive(const Registry* r);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::pair<std::string, std::string>, SpanStats> spans_;
};

}  // namespace netmaster::obs
