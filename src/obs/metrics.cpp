#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "common/error.hpp"

namespace netmaster::obs {

namespace {

void atomic_add(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + x,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur && !target.compare_exchange_weak(
                        cur, x, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur && !target.compare_exchange_weak(
                        cur, x, std::memory_order_relaxed)) {
  }
}

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Live-registry set guarding per-thread span sinks against flushing
/// into an already-destroyed test registry.
std::mutex& alive_mutex() {
  static std::mutex m;
  return m;
}
std::set<const Registry*>& alive_set() {
  static std::set<const Registry*> s;
  return s;
}

}  // namespace

void Gauge::add(double x) noexcept { atomic_add(value_, x); }

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)),
      counts_(bounds_.size() + 1),
      min_(kInf),
      max_(-kInf) {
  NM_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  NM_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly increasing");
}

void Histogram::add(double x) noexcept {
  if (std::isnan(x)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_min(min_, x);
  atomic_max(max_, x);
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  NM_REQUIRE(i < counts_.size(), "histogram bucket out of range");
  return counts_[i].load(std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::quantile(double q) const {
  NM_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q must be in [0,1]");
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double in_bucket = static_cast<double>(
        counts_[b].load(std::memory_order_relaxed));
    if (in_bucket == 0.0) continue;
    if (cumulative + in_bucket >= target) {
      // Interpolate inside the covering bucket; the overflow bucket
      // and the edges are clamped to the observed range.
      const double lo = b == 0 ? min() : bounds_[b - 1];
      const double hi = b < bounds_.size() ? bounds_[b] : max();
      const double frac =
          std::clamp((target - cumulative) / in_bucket, 0.0, 1.0);
      return std::clamp(lo + (hi - lo) * frac, min(), max());
    }
    cumulative += in_bucket;
  }
  return max();
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  rejected_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

P2Quantile::P2Quantile(double q) : q_(q) {
  NM_REQUIRE(q > 0.0 && q < 1.0, "P2 quantile must be in (0, 1)");
  pos_[0] = 1.0;
  pos_[1] = 2.0;
  pos_[2] = 3.0;
  pos_[3] = 4.0;
  pos_[4] = 5.0;
  want_[0] = 1.0;
  want_[1] = 1.0 + 2.0 * q_;
  want_[2] = 1.0 + 4.0 * q_;
  want_[3] = 3.0 + 2.0 * q_;
  want_[4] = 5.0;
  dwant_[0] = 0.0;
  dwant_[1] = q_ / 2.0;
  dwant_[2] = q_;
  dwant_[3] = (1.0 + q_) / 2.0;
  dwant_[4] = 1.0;
}

void P2Quantile::add(double x) {
  if (std::isnan(x)) return;
  if (count_ < 5) {
    height_[count_++] = x;
    if (count_ == 5) std::sort(height_, height_ + 5);
    return;
  }

  // Locate the cell containing x, saturating the extreme markers.
  std::size_t cell;
  if (x < height_[0]) {
    height_[0] = x;
    cell = 0;
  } else if (x >= height_[4]) {
    height_[4] = std::max(height_[4], x);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= height_[cell + 1]) ++cell;
  }
  for (std::size_t i = cell + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) want_[i] += dwant_[i];
  ++count_;

  // Adjust the three interior markers toward their desired positions
  // (parabolic step, linear fallback when the parabola overshoots).
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = want_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      const double qp =
          height_[i] +
          sign / (pos_[i + 1] - pos_[i - 1]) *
              ((pos_[i] - pos_[i - 1] + sign) *
                   (height_[i + 1] - height_[i]) /
                   (pos_[i + 1] - pos_[i]) +
               (pos_[i + 1] - pos_[i] - sign) *
                   (height_[i] - height_[i - 1]) /
                   (pos_[i] - pos_[i - 1]));
      if (height_[i - 1] < qp && qp < height_[i + 1]) {
        height_[i] = qp;
      } else {
        const std::size_t j =
            sign > 0.0 ? i + 1 : i - 1;
        height_[i] += sign * (height_[j] - height_[i]) /
                      (pos_[j] - pos_[i]);
      }
      pos_[i] += sign;
    }
  }
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ >= 5) return height_[2];
  // Exact small-sample quantile (nearest-rank on the sorted prefix).
  double sorted[5];
  std::copy(height_, height_ + count_, sorted);
  std::sort(sorted, sorted + count_);
  const auto rank = static_cast<std::size_t>(
      q_ * static_cast<double>(count_ - 1) + 0.5);
  return sorted[std::min(rank, count_ - 1)];
}

std::vector<double> latency_bounds_ms() {
  return {0.05, 0.1, 0.25, 0.5, 1.0,    2.5,    5.0,   10.0,  25.0,
          50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0};
}

std::vector<double> fraction_bounds() {
  return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
}

void SpanStats::merge(const SpanStats& other) {
  count += other.count;
  wall_ms += other.wall_ms;
  cpu_ms += other.cpu_ms;
  max_wall_ms = std::max(max_wall_ms, other.max_wall_ms);
}

Registry::Registry() {
  const std::lock_guard<std::mutex> lock(alive_mutex());
  alive_set().insert(this);
}

Registry::~Registry() {
  const std::lock_guard<std::mutex> lock(alive_mutex());
  alive_set().erase(this);
}

Registry& Registry::global() {
  // Leaked on purpose: per-thread span sinks may flush during thread
  // teardown after static destructors would have run.
  static Registry* g = new Registry();
  return *g;
}

bool Registry::is_alive(const Registry* r) {
  const std::lock_guard<std::mutex> lock(alive_mutex());
  return alive_set().count(r) != 0;
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

void Registry::merge_spans(
    const std::map<std::pair<std::string, std::string>, SpanStats>& spans) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, stats] : spans) spans_[key].merge(stats);
}

std::vector<Registry::CounterRow> Registry::counter_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterRow> rows;
  rows.reserve(counters_.size());
  for (const auto& [name, c] : counters_) rows.push_back({name, c->value()});
  return rows;
}

std::vector<Registry::GaugeRow> Registry::gauge_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<GaugeRow> rows;
  rows.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) rows.push_back({name, g->value()});
  return rows;
}

std::vector<Registry::HistogramRow> Registry::histogram_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramRow> rows;
  rows.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) rows.push_back({name, h.get()});
  return rows;
}

std::vector<Registry::SpanRow> Registry::span_rows() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRow> rows;
  rows.reserve(spans_.size());
  for (const auto& [key, stats] : spans_) {
    rows.push_back({key.first, key.second, stats});
  }
  return rows;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  spans_.clear();
}

}  // namespace netmaster::obs
