// Metric exporters: human-readable table and machine-readable JSON.
//
// Two JSON shapes are provided: `write_jsonl` emits one object per
// line (the NETMASTER_METRICS_OUT snapshot format, greppable and
// stream-appendable), `write_json_object` emits a single nested object
// (embedded in the per-bench figure JSON). Both flush the calling
// thread's span aggregates first.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace netmaster::obs {

/// Escapes a string for embedding inside a JSON string literal
/// (backslash, quote, and control characters).
std::string json_escape(const std::string& s);

/// Formats a double as a JSON value: finite values round-trip at 15
/// significant digits; NaN/inf (legal in C++ metrics, illegal in JSON)
/// become null. Every double the exporters emit goes through this —
/// use it for any hand-rolled JSON too (see bench/bench_common.hpp).
std::string json_number(double v);

/// One metric per line:
///   {"type":"counter","name":...,"value":...}
///   {"type":"gauge","name":...,"value":...}
///   {"type":"histogram","name":...,"count":...,"sum":...,"min":...,
///    "max":...,"rejected":...,"p50":...,"p90":...,"p99":...,
///    "buckets":[{"le":0.5,"count":3},...,{"le":"+inf","count":0}]}
///   {"type":"span","name":...,"parent":...,"count":...,"wall_ms":...,
///    "cpu_ms":...,"max_wall_ms":...}
void write_jsonl(Registry& registry, std::ostream& os);

/// The same snapshot as one object:
///   {"counters":{...},"gauges":{...},"histograms":[...],"spans":[...]}
void write_json_object(Registry& registry, std::ostream& os);

/// Aligned human table (counters, gauges, histogram summaries, span
/// tree) — intended for stderr at the end of a run.
void print_table(Registry& registry, std::ostream& os);

/// When NETMASTER_METRICS_OUT names a file, writes the JSON-lines
/// snapshot there (truncating any previous snapshot) and returns true.
/// No-op returning false when the variable is unset or empty; a file
/// that cannot be opened is reported once to stderr, never thrown.
bool maybe_export_env(Registry& registry = Registry::global());

}  // namespace netmaster::obs
