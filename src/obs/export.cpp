#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "obs/span.hpp"

namespace netmaster::obs {

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os << std::setprecision(15) << v;
  return os.str();
}

namespace {

void write_histogram_fields(const Histogram& h, std::ostream& os) {
  os << "\"count\":" << h.count() << ",\"sum\":" << json_number(h.sum())
     << ",\"min\":" << json_number(h.min())
     << ",\"max\":" << json_number(h.max())
     << ",\"rejected\":" << h.rejected()
     << ",\"p50\":" << json_number(h.quantile(0.5))
     << ",\"p90\":" << json_number(h.quantile(0.9))
     << ",\"p99\":" << json_number(h.quantile(0.99)) << ",\"buckets\":[";
  const std::vector<double>& bounds = h.bounds();
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b <= bounds.size(); ++b) {
    if (b > 0) os << ',';
    os << "{\"le\":";
    if (b < bounds.size()) {
      os << json_number(bounds[b]);
    } else {
      os << "\"+inf\"";
    }
    cumulative += h.bucket_count(b);
    os << ",\"count\":" << cumulative << '}';
  }
  os << ']';
}

void write_span_fields(const Registry::SpanRow& row, std::ostream& os) {
  os << "\"name\":\"" << json_escape(row.name) << "\",\"parent\":\""
     << json_escape(row.parent) << "\",\"count\":" << row.stats.count
     << ",\"wall_ms\":" << json_number(row.stats.wall_ms)
     << ",\"cpu_ms\":" << json_number(row.stats.cpu_ms)
     << ",\"max_wall_ms\":" << json_number(row.stats.max_wall_ms);
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_jsonl(Registry& registry, std::ostream& os) {
  flush_thread_spans();
  for (const auto& row : registry.counter_rows()) {
    os << "{\"type\":\"counter\",\"name\":\"" << json_escape(row.name)
       << "\",\"value\":" << row.value << "}\n";
  }
  for (const auto& row : registry.gauge_rows()) {
    os << "{\"type\":\"gauge\",\"name\":\"" << json_escape(row.name)
       << "\",\"value\":" << json_number(row.value) << "}\n";
  }
  for (const auto& row : registry.histogram_rows()) {
    os << "{\"type\":\"histogram\",\"name\":\"" << json_escape(row.name)
       << "\",";
    write_histogram_fields(*row.histogram, os);
    os << "}\n";
  }
  for (const auto& row : registry.span_rows()) {
    os << "{\"type\":\"span\",";
    write_span_fields(row, os);
    os << "}\n";
  }
}

void write_json_object(Registry& registry, std::ostream& os) {
  flush_thread_spans();
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& row : registry.counter_rows()) {
    os << (first ? "" : ",") << "\"" << json_escape(row.name)
       << "\":" << row.value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& row : registry.gauge_rows()) {
    os << (first ? "" : ",") << "\"" << json_escape(row.name)
       << "\":" << json_number(row.value);
    first = false;
  }
  os << "},\"histograms\":[";
  first = true;
  for (const auto& row : registry.histogram_rows()) {
    os << (first ? "" : ",") << "{\"name\":\"" << json_escape(row.name)
       << "\",";
    write_histogram_fields(*row.histogram, os);
    os << '}';
    first = false;
  }
  os << "],\"spans\":[";
  first = true;
  for (const auto& row : registry.span_rows()) {
    os << (first ? "" : ",") << '{';
    write_span_fields(row, os);
    os << '}';
    first = false;
  }
  os << "]}";
}

void print_table(Registry& registry, std::ostream& os) {
  flush_thread_spans();
  os << "---- metrics ----\n";
  for (const auto& row : registry.counter_rows()) {
    os << "  counter  " << row.name << " = " << row.value << '\n';
  }
  for (const auto& row : registry.gauge_rows()) {
    os << "  gauge    " << row.name << " = " << row.value << '\n';
  }
  for (const auto& row : registry.histogram_rows()) {
    const Histogram& h = *row.histogram;
    os << "  hist     " << row.name << "  n=" << h.count()
       << " mean=" << h.mean() << " p50=" << h.quantile(0.5)
       << " p90=" << h.quantile(0.9) << " p99=" << h.quantile(0.99)
       << " max=" << h.max();
    if (h.rejected() > 0) os << " rejected=" << h.rejected();
    os << '\n';
  }
  // Spans: roots first, children indented under their parent.
  const auto rows = registry.span_rows();
  auto print_span = [&](const Registry::SpanRow& row, int depth,
                        auto&& self) -> void {
    os << "  span     ";
    for (int i = 0; i < depth; ++i) os << "  ";
    os << row.name << "  n=" << row.stats.count
       << " wall=" << row.stats.wall_ms << "ms cpu=" << row.stats.cpu_ms
       << "ms max=" << row.stats.max_wall_ms << "ms\n";
    if (depth > 8) return;  // cycle guard; span trees are shallow
    for (const auto& child : rows) {
      if (child.parent == row.name && child.name != row.name) {
        self(child, depth + 1, self);
      }
    }
  };
  for (const auto& row : rows) {
    if (row.parent.empty()) print_span(row, 0, print_span);
  }
  os << "-----------------\n";
}

bool maybe_export_env(Registry& registry) {
  const char* path = std::getenv("NETMASTER_METRICS_OUT");
  if (path == nullptr || *path == '\0') return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    static bool warned = false;
    if (!warned) {
      std::cerr << "obs: cannot open NETMASTER_METRICS_OUT file '" << path
                << "'\n";
      warned = true;
    }
    return false;
  }
  write_jsonl(registry, out);
  return true;
}

}  // namespace netmaster::obs
