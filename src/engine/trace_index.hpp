// Shared replay index over one UserTrace — arena-backed and
// self-contained.
//
// Every policy and the online event loop need the same handful of
// derived facts about an evaluation trace: binary-searchable screen
// session boundaries, the set of deferrable screen-off activities (the
// class the paper's optimizations target), and per-(day, hour) activity
// buckets (the mining substrate). A TraceIndex computes all of them
// once; N policies replaying the same user then share one index instead
// of re-deriving the facts with per-policy O(n log s) scans.
//
// Memory model (ROADMAP item 2): at construction the index copies the
// trace's session/usage/activity columns into ONE arena as
// structure-of-arrays (mem::TraceColumns) and builds its derived
// columns — packed classification bits, u32 deferrable list, hour
// buckets — into the same arena. After that the index is
// self-contained: replay reads only arena memory, so the source
// UserTrace may be evicted to disk (eval::UserStore) while policies
// keep replaying. The old raw borrowed reference is replaced by a
// generation-checked mem::LifetimeHandle: `trace()` still exposes the
// source trace for callers that own it, but a moved-from or evicted
// source is caught with an Error instead of silently read.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>

#include "common/time.hpp"
#include "mem/arena.hpp"
#include "mem/soa.hpp"
#include "trace/trace.hpp"

namespace netmaster::engine {

class TraceIndex {
 public:
  /// Indexes `trace` into an internally-owned arena. The index itself
  /// never dereferences the trace after construction; `trace()` remains
  /// valid only while the caller keeps the trace alive (no lifetime
  /// tracking on this overload — it exists for stack-local one-shot
  /// replays where the trace outlives the index by construction).
  /// Does not validate: policies accept the same traces they always
  /// did; call trace().validate() for strict checking.
  explicit TraceIndex(const UserTrace& trace);

  /// Fleet overload: builds every column into the caller's per-user
  /// `arena` and guards `trace()` with `source` — once the owner
  /// retires the lifetime (eviction, move-out), trace() throws instead
  /// of dereferencing freed memory. The arena must outlive the index
  /// and must not be reset while the index is alive.
  TraceIndex(const UserTrace& trace, mem::Arena& arena,
             mem::LifetimeHandle source);

  TraceIndex(TraceIndex&&) = default;
  TraceIndex& operator=(TraceIndex&&) = default;

  /// The source trace. Guarded: throws netmaster::Error when the
  /// owning lifetime was retired (the trace was evicted or moved
  /// from). Fleet replay paths must use the columnar accessors below,
  /// which stay valid regardless.
  const UserTrace& trace() const;

  /// True while the source trace behind trace() is still live.
  bool source_alive() const { return source_.alive(); }

  TimeMs horizon() const { return horizon_; }
  int num_days() const { return columns_.num_days; }
  UserId user() const { return columns_.user; }
  std::size_t num_apps() const { return columns_.app_names.size(); }

  /// Columnar views into the arena — the replay read path.
  const mem::SessionColumns& sessions() const { return columns_.sessions; }
  const mem::ActivityColumns& activities() const {
    return columns_.activities;
  }
  const mem::UsageColumns& usages() const { return columns_.usages; }
  const mem::AppNameTable& app_names() const { return columns_.app_names; }

  // ---- Session lookups (binary search over the sorted columns). ----

  /// True when the screen is on at instant t (same contract as
  /// UserTrace::screen_on_at).
  bool screen_on_at(TimeMs t) const;

  /// Index of the first session with begin >= t; sessions().size()
  /// when none.
  std::size_t first_session_at_or_after(TimeMs t) const;

  /// Begin of the first session with begin >= t, or `fallback` when
  /// no session starts at or after t.
  TimeMs next_session_begin(TimeMs t, TimeMs fallback) const;

  /// Begin of the last session starting inside [lo, hi); -1 when none.
  TimeMs last_session_begin_in(TimeMs lo, TimeMs hi) const;

  // ---- Activity classification (computed once at construction). ----

  /// True when activity `activity_index` is a deferrable (background)
  /// transfer arriving while the screen is off — precomputed
  /// policy::is_deferrable_screen_off.
  bool is_deferrable_screen_off(std::size_t activity_index) const {
    return deferrable_flags_.test(activity_index);
  }

  /// Ascending indices of the deferrable screen-off activities.
  std::span<const std::uint32_t> deferrable_screen_off() const {
    return deferrable_;
  }

  // ---- Per-(day, hour) buckets (the mining substrate). ----

  struct HourBucket {
    int usage_count = 0;  ///< foreground interactions starting this hour
    int net_count = 0;    ///< screen-off network activities
    double net_bytes = 0.0;      ///< bytes moved by those activities
    int distinct_net_apps = 0;   ///< apps with screen-off traffic
  };

  const HourBucket& bucket(int day, int hour) const;

  /// Bytes of arena memory backing this index's columns (0 when the
  /// caller supplied the arena — the owner accounts for it there).
  std::size_t owned_arena_bytes() const {
    return owned_arena_ ? owned_arena_->bytes_reserved() : 0;
  }

  /// Throws netmaster::Error when an internal invariant is broken
  /// (sessions unsorted/overlapping, classification inconsistent with
  /// the trace, bucket totals not matching the event counts). Needs
  /// the source trace alive — it cross-checks columns against it.
  void check_invariants() const;

 private:
  void build(const UserTrace& trace, mem::Arena& arena);
  bool columns_screen_on_at(TimeMs t) const;

  const UserTrace* trace_ = nullptr;
  mem::LifetimeHandle source_;
  std::unique_ptr<mem::Arena> owned_arena_;  ///< null on the fleet path
  TimeMs horizon_ = 0;
  mem::TraceColumns columns_;             ///< SoA trace copy, one arena
  mem::BitSpan deferrable_flags_;         ///< per activity index
  std::span<const std::uint32_t> deferrable_;  ///< ascending indices
  std::span<const HourBucket> buckets_;   ///< num_days * kHoursPerDay
};

}  // namespace netmaster::engine
