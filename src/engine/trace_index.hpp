// Shared replay index over one UserTrace.
//
// Every policy and the online event loop need the same handful of
// derived facts about an evaluation trace: binary-searchable screen
// session boundaries, the set of deferrable screen-off activities (the
// class the paper's optimizations target), and per-(day, hour) activity
// buckets (the mining substrate). A TraceIndex computes all of them
// once; N policies replaying the same user then share one index instead
// of re-deriving the facts with per-policy O(n log s) scans. The index
// borrows the trace — the UserTrace must outlive it.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"
#include "trace/trace.hpp"

namespace netmaster::engine {

class TraceIndex {
 public:
  /// Indexes `trace` (kept by reference — it must outlive the index).
  /// Does not validate: policies accept the same traces they always
  /// did; call trace().validate() for strict checking.
  explicit TraceIndex(const UserTrace& trace);

  const UserTrace& trace() const { return *trace_; }
  TimeMs horizon() const { return horizon_; }
  const std::vector<ScreenSession>& sessions() const {
    return trace_->sessions;
  }
  const std::vector<NetworkActivity>& activities() const {
    return trace_->activities;
  }

  // ---- Session lookups (binary search over the sorted sessions). ----

  /// True when the screen is on at instant t (same contract as
  /// UserTrace::screen_on_at).
  bool screen_on_at(TimeMs t) const;

  /// Index of the first session with begin >= t; sessions().size()
  /// when none.
  std::size_t first_session_at_or_after(TimeMs t) const;

  /// Begin of the first session with begin >= t, or `fallback` when
  /// no session starts at or after t.
  TimeMs next_session_begin(TimeMs t, TimeMs fallback) const;

  /// Begin of the last session starting inside [lo, hi); -1 when none.
  TimeMs last_session_begin_in(TimeMs lo, TimeMs hi) const;

  // ---- Activity classification (computed once at construction). ----

  /// True when activity `activity_index` is a deferrable (background)
  /// transfer arriving while the screen is off — precomputed
  /// policy::is_deferrable_screen_off.
  bool is_deferrable_screen_off(std::size_t activity_index) const {
    return deferrable_flags_[activity_index];
  }

  /// Ascending indices of the deferrable screen-off activities.
  const std::vector<std::size_t>& deferrable_screen_off() const {
    return deferrable_;
  }

  // ---- Per-(day, hour) buckets (the mining substrate). ----

  struct HourBucket {
    int usage_count = 0;  ///< foreground interactions starting this hour
    int net_count = 0;    ///< screen-off network activities
    double net_bytes = 0.0;      ///< bytes moved by those activities
    int distinct_net_apps = 0;   ///< apps with screen-off traffic
  };

  const HourBucket& bucket(int day, int hour) const;

  /// Throws netmaster::Error when an internal invariant is broken
  /// (sessions unsorted/overlapping, classification inconsistent with
  /// the trace, bucket totals not matching the event counts).
  void check_invariants() const;

 private:
  const UserTrace* trace_;
  TimeMs horizon_ = 0;
  std::vector<bool> deferrable_flags_;    ///< per activity index
  std::vector<std::size_t> deferrable_;   ///< ascending activity indices
  std::vector<HourBucket> buckets_;       ///< num_days * kHoursPerDay
};

}  // namespace netmaster::engine
