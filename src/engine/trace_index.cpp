#include "engine/trace_index.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace netmaster::engine {

TraceIndex::TraceIndex(const UserTrace& trace)
    : trace_(&trace), horizon_(trace.trace_end()) {
  const obs::SpanScope span("engine.index_build");
  const std::vector<NetworkActivity>& acts = trace.activities;
  deferrable_flags_.resize(acts.size(), false);
  for (std::size_t i = 0; i < acts.size(); ++i) {
    if (acts[i].deferrable && !screen_on_at(acts[i].start)) {
      deferrable_flags_[i] = true;
      deferrable_.push_back(i);
    }
  }

  // Per-(day, hour) buckets. Events outside [0, horizon) are skipped so
  // the index stays total on malformed traces (validate() still rejects
  // them where strictness matters).
  const int days = std::max(trace.num_days, 0);
  buckets_.resize(static_cast<std::size_t>(days) * kHoursPerDay);
  const std::size_t num_apps = trace.app_names.size();
  std::vector<bool> app_seen(buckets_.size() * num_apps, false);
  for (const AppUsage& u : trace.usages) {
    if (u.time < 0 || u.time >= horizon_) continue;
    ++buckets_[static_cast<std::size_t>(day_of(u.time)) * kHoursPerDay +
               static_cast<std::size_t>(hour_of(u.time))]
          .usage_count;
  }
  for (std::size_t i = 0; i < acts.size(); ++i) {
    const NetworkActivity& n = acts[i];
    if (n.start < 0 || n.start >= horizon_) continue;
    if (screen_on_at(n.start)) continue;  // screen-off only (Eq. 3)
    const std::size_t b =
        static_cast<std::size_t>(day_of(n.start)) * kHoursPerDay +
        static_cast<std::size_t>(hour_of(n.start));
    HourBucket& bucket = buckets_[b];
    ++bucket.net_count;
    bucket.net_bytes += static_cast<double>(n.total_bytes());
    if (n.app >= 0 && static_cast<std::size_t>(n.app) < num_apps) {
      const std::size_t bit =
          b * num_apps + static_cast<std::size_t>(n.app);
      if (!app_seen[bit]) {
        app_seen[bit] = true;
        ++bucket.distinct_net_apps;
      }
    }
  }
}

bool TraceIndex::screen_on_at(TimeMs t) const {
  const std::vector<ScreenSession>& sessions = trace_->sessions;
  auto it = std::lower_bound(
      sessions.begin(), sessions.end(), t,
      [](const ScreenSession& s, TimeMs v) { return s.end <= v; });
  return it != sessions.end() && it->begin <= t && t < it->end;
}

std::size_t TraceIndex::first_session_at_or_after(TimeMs t) const {
  const std::vector<ScreenSession>& sessions = trace_->sessions;
  const auto it = std::lower_bound(
      sessions.begin(), sessions.end(), t,
      [](const ScreenSession& s, TimeMs v) { return s.begin < v; });
  return static_cast<std::size_t>(it - sessions.begin());
}

TimeMs TraceIndex::next_session_begin(TimeMs t, TimeMs fallback) const {
  const std::size_t idx = first_session_at_or_after(t);
  return idx < trace_->sessions.size() ? trace_->sessions[idx].begin
                                       : fallback;
}

TimeMs TraceIndex::last_session_begin_in(TimeMs lo, TimeMs hi) const {
  std::size_t idx = first_session_at_or_after(hi);
  if (idx == 0) return -1;
  const TimeMs begin = trace_->sessions[idx - 1].begin;
  return begin >= lo ? begin : -1;
}

const TraceIndex::HourBucket& TraceIndex::bucket(int day, int hour) const {
  NM_REQUIRE(day >= 0 && day < trace_->num_days, "bucket day out of range");
  NM_REQUIRE(hour >= 0 && hour < kHoursPerDay, "bucket hour out of range");
  return buckets_[static_cast<std::size_t>(day) * kHoursPerDay +
                  static_cast<std::size_t>(hour)];
}

void TraceIndex::check_invariants() const {
  const UserTrace& trace = *trace_;

  // Sessions sorted, disjoint, non-empty (mirrors UserTrace::validate
  // so a corrupted index is caught even on traces nobody validated).
  TimeMs prev_end = 0;
  for (const ScreenSession& s : trace.sessions) {
    NM_REQUIRE(s.begin < s.end, "index: empty screen session");
    NM_REQUIRE(s.begin >= prev_end, "index: sessions unsorted/overlapping");
    prev_end = s.end;
  }

  // Every activity classified exactly once, and exactly as the
  // canonical predicate does on the raw trace.
  NM_REQUIRE(deferrable_flags_.size() == trace.activities.size(),
             "index: classification size mismatch");
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < trace.activities.size(); ++i) {
    const NetworkActivity& act = trace.activities[i];
    const bool expect =
        act.deferrable && !trace.screen_on_at(act.start);
    NM_REQUIRE(deferrable_flags_[i] == expect,
               "index: classification disagrees with the trace");
    if (deferrable_flags_[i]) ++flagged;
  }
  NM_REQUIRE(deferrable_.size() == flagged,
             "index: deferrable list size mismatch");
  for (std::size_t k = 0; k < deferrable_.size(); ++k) {
    NM_REQUIRE(deferrable_[k] < deferrable_flags_.size() &&
                   deferrable_flags_[deferrable_[k]],
               "index: deferrable list references unflagged activity");
    NM_REQUIRE(k == 0 || deferrable_[k - 1] < deferrable_[k],
               "index: deferrable list not strictly ascending");
  }

  // Bucket totals match the in-range event counts.
  int usage_total = 0;
  int net_total = 0;
  for (const HourBucket& b : buckets_) {
    NM_REQUIRE(b.usage_count >= 0 && b.net_count >= 0 &&
                   b.net_bytes >= 0.0 && b.distinct_net_apps >= 0,
               "index: negative bucket counter");
    NM_REQUIRE(b.distinct_net_apps <= b.net_count,
               "index: more distinct apps than activities in bucket");
    usage_total += b.usage_count;
    net_total += b.net_count;
  }
  int usage_expected = 0;
  for (const AppUsage& u : trace.usages) {
    if (u.time >= 0 && u.time < horizon_) ++usage_expected;
  }
  int net_expected = 0;
  for (const NetworkActivity& n : trace.activities) {
    if (n.start >= 0 && n.start < horizon_ && !trace.screen_on_at(n.start)) {
      ++net_expected;
    }
  }
  NM_REQUIRE(usage_total == usage_expected,
             "index: usage bucket totals drifted from the trace");
  NM_REQUIRE(net_total == net_expected,
             "index: network bucket totals drifted from the trace");
}

}  // namespace netmaster::engine
