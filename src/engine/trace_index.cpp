#include "engine/trace_index.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace netmaster::engine {

TraceIndex::TraceIndex(const UserTrace& trace)
    : trace_(&trace),
      source_(mem::Lifetime::immortal()),
      owned_arena_(std::make_unique<mem::Arena>()) {
  build(trace, *owned_arena_);
}

TraceIndex::TraceIndex(const UserTrace& trace, mem::Arena& arena,
                       mem::LifetimeHandle source)
    : trace_(&trace), source_(std::move(source)) {
  build(trace, arena);
}

void TraceIndex::build(const UserTrace& trace, mem::Arena& arena) {
  const obs::SpanScope span("engine.index_build");
  horizon_ = trace.trace_end();

  // SoA copies of the trace columns — after this the index never needs
  // the AoS trace again.
  columns_ = mem::TraceColumns::build(trace, arena);

  // Classification pass over the columns. One zeroed bit per activity,
  // plus the compact ascending index list (u32: a trace with > 4G
  // activities would have long blown the per-user budget).
  const mem::ActivityColumns& acts = columns_.activities;
  auto [flags, flag_words] = mem::BitSpan::build(acts.size(), arena);
  deferrable_flags_ = flags;
  std::vector<std::uint32_t> deferrable;
  for (std::size_t i = 0; i < acts.size(); ++i) {
    if (acts.deferrable_at(i) && !columns_screen_on_at(acts.start_at(i))) {
      mem::BitSpan::set(flag_words, i);
      deferrable.push_back(static_cast<std::uint32_t>(i));
    }
  }
  deferrable_ = arena.copy_array<std::uint32_t>(deferrable);

  // Per-(day, hour) buckets. Events outside [0, horizon) are skipped so
  // the index stays total on malformed traces (validate() still rejects
  // them where strictness matters).
  const int days = std::max(columns_.num_days, 0);
  std::span<HourBucket> buckets =
      arena.alloc_zeroed<HourBucket>(static_cast<std::size_t>(days) *
                                     kHoursPerDay);
  buckets_ = buckets;
  const std::size_t num_apps = columns_.app_names.size();
  std::vector<bool> app_seen(buckets.size() * num_apps, false);
  const mem::UsageColumns& usages = columns_.usages;
  for (std::size_t i = 0; i < usages.size(); ++i) {
    const TimeMs t = usages.time_at(i);
    if (t < 0 || t >= horizon_) continue;
    ++buckets[static_cast<std::size_t>(day_of(t)) * kHoursPerDay +
              static_cast<std::size_t>(hour_of(t))]
          .usage_count;
  }
  for (std::size_t i = 0; i < acts.size(); ++i) {
    const TimeMs start = acts.start_at(i);
    if (start < 0 || start >= horizon_) continue;
    if (columns_screen_on_at(start)) continue;  // screen-off only (Eq. 3)
    const std::size_t b =
        static_cast<std::size_t>(day_of(start)) * kHoursPerDay +
        static_cast<std::size_t>(hour_of(start));
    HourBucket& bucket = buckets[b];
    ++bucket.net_count;
    bucket.net_bytes += static_cast<double>(acts.total_bytes_at(i));
    const AppId app = acts.app_at(i);
    if (app >= 0 && static_cast<std::size_t>(app) < num_apps) {
      const std::size_t bit = b * num_apps + static_cast<std::size_t>(app);
      if (!app_seen[bit]) {
        app_seen[bit] = true;
        ++bucket.distinct_net_apps;
      }
    }
  }
}

const UserTrace& TraceIndex::trace() const {
  NM_REQUIRE(source_.alive(),
             "TraceIndex::trace — the source trace was evicted or moved "
             "from; replay must use the index's columnar accessors");
  return *trace_;
}

bool TraceIndex::columns_screen_on_at(TimeMs t) const {
  const std::span<const TimeMs> ends = columns_.sessions.ends();
  const auto it = std::lower_bound(ends.begin(), ends.end(), t,
                                   [](TimeMs end, TimeMs v) {
                                     return end <= v;
                                   });
  if (it == ends.end()) return false;
  const std::size_t i = static_cast<std::size_t>(it - ends.begin());
  return columns_.sessions.begin_at(i) <= t && t < *it;
}

bool TraceIndex::screen_on_at(TimeMs t) const {
  return columns_screen_on_at(t);
}

std::size_t TraceIndex::first_session_at_or_after(TimeMs t) const {
  const std::span<const TimeMs> begins = columns_.sessions.begins();
  const auto it = std::lower_bound(begins.begin(), begins.end(), t);
  return static_cast<std::size_t>(it - begins.begin());
}

TimeMs TraceIndex::next_session_begin(TimeMs t, TimeMs fallback) const {
  const std::size_t idx = first_session_at_or_after(t);
  return idx < columns_.sessions.size() ? columns_.sessions.begin_at(idx)
                                        : fallback;
}

TimeMs TraceIndex::last_session_begin_in(TimeMs lo, TimeMs hi) const {
  std::size_t idx = first_session_at_or_after(hi);
  if (idx == 0) return -1;
  const TimeMs begin = columns_.sessions.begin_at(idx - 1);
  return begin >= lo ? begin : -1;
}

const TraceIndex::HourBucket& TraceIndex::bucket(int day, int hour) const {
  NM_REQUIRE(day >= 0 && day < columns_.num_days,
             "bucket day out of range");
  NM_REQUIRE(hour >= 0 && hour < kHoursPerDay, "bucket hour out of range");
  return buckets_[static_cast<std::size_t>(day) * kHoursPerDay +
                  static_cast<std::size_t>(hour)];
}

void TraceIndex::check_invariants() const {
  const UserTrace& source = trace();  // guarded: needs the source alive

  // The arena columns must mirror the source trace exactly.
  NM_REQUIRE(columns_.sessions.size() == source.sessions.size() &&
                 columns_.usages.size() == source.usages.size() &&
                 columns_.activities.size() == source.activities.size() &&
                 columns_.num_days == source.num_days,
             "index: column sizes drifted from the source trace");
  for (std::size_t i = 0; i < columns_.sessions.size(); ++i) {
    NM_REQUIRE(columns_.sessions[i] == source.sessions[i],
               "index: session column drifted from the source trace");
  }
  for (std::size_t i = 0; i < columns_.activities.size(); ++i) {
    NM_REQUIRE(columns_.activities[i] == source.activities[i],
               "index: activity column drifted from the source trace");
  }

  // Sessions sorted, disjoint, non-empty (mirrors UserTrace::validate
  // so a corrupted index is caught even on traces nobody validated).
  TimeMs prev_end = 0;
  for (const ScreenSession s : columns_.sessions) {
    NM_REQUIRE(s.begin < s.end, "index: empty screen session");
    NM_REQUIRE(s.begin >= prev_end, "index: sessions unsorted/overlapping");
    prev_end = s.end;
  }

  // Every activity classified exactly once, and exactly as the
  // canonical predicate does on the raw trace.
  NM_REQUIRE(deferrable_flags_.size() == source.activities.size(),
             "index: classification size mismatch");
  std::size_t flagged = 0;
  for (std::size_t i = 0; i < source.activities.size(); ++i) {
    const NetworkActivity& act = source.activities[i];
    const bool expect = act.deferrable && !source.screen_on_at(act.start);
    NM_REQUIRE(deferrable_flags_.test(i) == expect,
               "index: classification disagrees with the trace");
    if (deferrable_flags_.test(i)) ++flagged;
  }
  NM_REQUIRE(deferrable_.size() == flagged,
             "index: deferrable list size mismatch");
  for (std::size_t k = 0; k < deferrable_.size(); ++k) {
    NM_REQUIRE(deferrable_[k] < deferrable_flags_.size() &&
                   deferrable_flags_.test(deferrable_[k]),
               "index: deferrable list references unflagged activity");
    NM_REQUIRE(k == 0 || deferrable_[k - 1] < deferrable_[k],
               "index: deferrable list not strictly ascending");
  }

  // Bucket totals match the in-range event counts.
  int usage_total = 0;
  int net_total = 0;
  for (const HourBucket& b : buckets_) {
    NM_REQUIRE(b.usage_count >= 0 && b.net_count >= 0 &&
                   b.net_bytes >= 0.0 && b.distinct_net_apps >= 0,
               "index: negative bucket counter");
    NM_REQUIRE(b.distinct_net_apps <= b.net_count,
               "index: more distinct apps than activities in bucket");
    usage_total += b.usage_count;
    net_total += b.net_count;
  }
  int usage_expected = 0;
  for (const AppUsage& u : source.usages) {
    if (u.time >= 0 && u.time < horizon_) ++usage_expected;
  }
  int net_expected = 0;
  for (const NetworkActivity& n : source.activities) {
    if (n.start >= 0 && n.start < horizon_ &&
        !source.screen_on_at(n.start)) {
      ++net_expected;
    }
  }
  NM_REQUIRE(usage_total == usage_expected,
             "index: usage bucket totals drifted from the trace");
  NM_REQUIRE(net_total == net_expected,
             "index: network bucket totals drifted from the trace");
}

}  // namespace netmaster::engine
