// Canonical builder for the radio on/off timeline.
//
// Policies that drive the data switch (NetMaster, the oracle, the
// online event loop) all need the same construction: the set of windows
// in which the radio may be non-IDLE — executed transfers extended by
// the dormancy-signalling grace, duty-cycle wake probes, predicted
// active slots. Each used to assemble that IntervalSet by hand;
// RadioTimeline is the one shared builder, clamping every window to
// [0, horizon) and keeping the set canonical, and the accountant
// (sim/accounting.cpp) consumes the same representation.
#pragma once

#include <vector>

#include "common/interval.hpp"
#include "common/time.hpp"
#include "duty/duty_cycle.hpp"
#include "sim/outcome.hpp"

namespace netmaster::engine {

class RadioTimeline {
 public:
  explicit RadioTimeline(TimeMs horizon);

  TimeMs horizon() const { return horizon_; }

  /// Allows the radio inside [begin, end), clamped to [0, horizon).
  void allow(TimeMs begin, TimeMs end);
  void allow(const Interval& window) { allow(window.begin, window.end); }

  /// Union with an existing canonical set (clamped per interval).
  void allow(const IntervalSet& set);

  void allow_windows(const std::vector<Interval>& windows);

  /// Allows each executed transfer's interval, extended by `grace`
  /// (the release-signalling delay before the forced dormancy drop).
  void allow_transfers(const std::vector<sim::ExecutedTransfer>& transfers,
                       DurationMs grace = 0);

  /// Allows each duty-cycle probe window.
  void allow_wakes(const std::vector<duty::WakeEvent>& wakes);

  const IntervalSet& allowed() const { return allowed_; }
  IntervalSet build() const& { return allowed_; }
  IntervalSet build() && { return std::move(allowed_); }

 private:
  TimeMs horizon_;
  IntervalSet allowed_;
};

}  // namespace netmaster::engine
