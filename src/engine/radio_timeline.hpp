// Canonical builder for the radio on/off timeline.
//
// Policies that drive the data switch (NetMaster, the oracle, the
// online event loop) all need the same construction: the set of windows
// in which the radio may be non-IDLE — executed transfers extended by
// the dormancy-signalling grace, duty-cycle wake probes, predicted
// active slots. Each used to assemble that IntervalSet by hand;
// RadioTimeline is the one shared builder, clamping every window to
// [0, horizon) and keeping the set canonical, and the accountant
// (sim/accounting.cpp) consumes the same representation.
#pragma once

#include <span>
#include <vector>

#include "common/interval.hpp"
#include "common/time.hpp"
#include "duty/duty_cycle.hpp"
#include "power/radio_model.hpp"
#include "sim/outcome.hpp"

namespace netmaster::engine {

class RadioTimeline {
 public:
  explicit RadioTimeline(TimeMs horizon);

  TimeMs horizon() const { return horizon_; }

  /// Allows the radio inside [begin, end), clamped to [0, horizon).
  void allow(TimeMs begin, TimeMs end);
  void allow(const Interval& window) { allow(window.begin, window.end); }

  /// Union with an existing canonical set (clamped per interval).
  void allow(const IntervalSet& set);

  void allow_windows(const std::vector<Interval>& windows);

  /// Allows each executed transfer's interval, extended by `grace`
  /// (the release-signalling delay before the forced dormancy drop).
  /// Transfers assigned to a non-cellular radio are skipped: this
  /// timeline models the cellular data switch, and a Wi-Fi transfer
  /// does not hold the cellular radio open.
  void allow_transfers(const std::vector<sim::ExecutedTransfer>& transfers,
                       DurationMs grace = 0);

  /// Allows each duty-cycle probe window.
  void allow_wakes(const std::vector<duty::WakeEvent>& wakes);

  const IntervalSet& allowed() const { return allowed_; }
  IntervalSet build() const& { return allowed_; }
  IntervalSet build() && { return std::move(allowed_); }

 private:
  TimeMs horizon_;
  IntervalSet allowed_;
};

/// Vectorized RRC state-residency accounting over SoA time columns —
/// the replay-hot-path form of power/radio_model.cpp's
/// account_transfers, generalized over the N-tier tail chain.
/// `begins`/`ends` are the canonical transfer columns (sorted,
/// disjoint, non-empty, equal length — exactly the layout of
/// mem::SessionColumns and of an IntervalSet's split fields). The
/// kernel makes a single branch-minimized pass: tail spans drain
/// through the tier chain with max/min clamps, promotion classes are
/// boolean-arithmetic selectors over the tier boundaries instead of
/// the reference implementation's branchy tier search, and the
/// allowed-set lookups are two monotone merge cursors instead of
/// per-transfer binary searches (O(n + m) total). Energy is derived
/// once at the end from the integer millisecond totals, so results are
/// bit-for-bit identical to account_transfers on every input — a
/// property the differential tests in radio_timeline_test fuzz over
/// random 1–4-tier models. Takes any RadioModel (RadioPowerParams
/// converts implicitly).
RadioAccounting account_columns(std::span<const TimeMs> begins,
                                std::span<const TimeMs> ends,
                                const RadioModel& model,
                                TimeMs horizon_end,
                                const IntervalSet* radio_allowed = nullptr);

/// account_columns over a canonical IntervalSet: splits the AoS
/// intervals into thread-local scratch columns (no steady-state
/// allocation) and runs the vectorized kernel. Drop-in replacement for
/// account_transfers on the accounting hot path.
RadioAccounting account_interval_set(
    const IntervalSet& transfers, const RadioModel& model,
    TimeMs horizon_end, const IntervalSet* radio_allowed = nullptr);

}  // namespace netmaster::engine
