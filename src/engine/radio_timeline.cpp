#include "engine/radio_timeline.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace netmaster::engine {

RadioTimeline::RadioTimeline(TimeMs horizon) : horizon_(horizon) {
  NM_REQUIRE(horizon >= 0, "timeline horizon must be non-negative");
}

void RadioTimeline::allow(TimeMs begin, TimeMs end) {
  begin = std::max<TimeMs>(begin, 0);
  end = std::min(end, horizon_);
  if (begin < end) allowed_.add(begin, end);
}

void RadioTimeline::allow(const IntervalSet& set) {
  for (const Interval& iv : set.intervals()) allow(iv.begin, iv.end);
}

void RadioTimeline::allow_windows(const std::vector<Interval>& windows) {
  for (const Interval& w : windows) allow(w.begin, w.end);
}

void RadioTimeline::allow_transfers(
    const std::vector<sim::ExecutedTransfer>& transfers, DurationMs grace) {
  for (const sim::ExecutedTransfer& t : transfers) {
    allow(t.start, t.start + t.duration + grace);
  }
}

void RadioTimeline::allow_wakes(const std::vector<duty::WakeEvent>& wakes) {
  for (const duty::WakeEvent& w : wakes) allow(w.time, w.time + w.window);
}

namespace {

/// mW * ms -> joules. Same expression as power/radio_model.cpp so the
/// final doubles are bit-identical.
constexpr double energy_joules(double mw, DurationMs ms) {
  return mw * static_cast<double>(ms) * 1e-6;
}

constexpr TimeMs kFar = std::numeric_limits<TimeMs>::max() / 4;

}  // namespace

RadioAccounting account_columns(std::span<const TimeMs> begins,
                                std::span<const TimeMs> ends,
                                const RadioPowerParams& params,
                                TimeMs horizon_end,
                                const IntervalSet* radio_allowed) {
  params.validate();
  const std::size_t n = begins.size();
  NM_REQUIRE(n == ends.size(),
             "transfer columns must have equal lengths");

  const std::vector<Interval>* allowed =
      radio_allowed != nullptr ? &radio_allowed->intervals() : nullptr;

  // Validation pass, in index order so a doubly-invalid input raises
  // the same error the reference implementation would. The canonical
  // columns are sorted, so the allowed-set membership check is one
  // monotone merge cursor instead of n binary searches.
  {
    std::size_t j = 0;
    for (std::size_t k = 0; k < n; ++k) {
      NM_REQUIRE(ends[k] <= horizon_end,
                 "transfer extends beyond the accounting horizon");
      if (allowed != nullptr) {
        const TimeMs b = begins[k];
        while (j < allowed->size() && (*allowed)[j].end <= b) ++j;
        NM_REQUIRE(j < allowed->size() && (*allowed)[j].begin <= b,
                   "transfer outside the radio-allowed set");
      }
    }
  }

  const DurationMs dch_tail = params.dch_tail_ms;
  const DurationMs fach_tail = params.fach_tail_ms;
  DurationMs active_ms = 0;
  DurationMs tail_dch = 0;
  DurationMs tail_fach = 0;
  DurationMs promo_ms = 0;
  int promotions = 0;

  // End-of-allowed-window cursor. Query points (the running
  // connected_until) are non-decreasing, so one forward scan serves
  // every lookup including the trailing tail.
  std::size_t aj = 0;
  const auto allowed_until = [&](TimeMs t) -> TimeMs {
    if (allowed == nullptr) return kFar;
    while (aj < allowed->size() && (*allowed)[aj].end <= t) ++aj;
    if (aj < allowed->size() && (*allowed)[aj].begin <= t) {
      return (*allowed)[aj].end;
    }
    return t;
  };

  TimeMs connected_until = 0;
  if (n > 0) {
    // Peel the first transfer: always a cold promotion from IDLE.
    const DurationMs promo0 = params.promo_idle_ms;
    promotions += promo0 > 0;
    promo_ms += promo0;
    const DurationMs dur0 = ends[0] - begins[0];
    active_ms += dur0;
    connected_until = begins[0] + promo0 + dur0;

    for (std::size_t k = 1; k < n; ++k) {
      const TimeMs b = begins[k];
      const DurationMs dur = ends[k] - b;
      const TimeMs prev = connected_until;
      const TimeMs cut = allowed_until(prev);
      const TimeMs warm_dch_end = prev + dch_tail;
      const TimeMs warm_fach_end = warm_dch_end + fach_tail;

      // Inter-transfer tail: runs from prev to min(b, cut, tail
      // expiry). The no-gap case (b <= prev: the connected period
      // simply extends) clamps the span to zero — no branch.
      const TimeMs tail_stop = std::min({b, cut, warm_fach_end});
      const DurationMs span = std::max<DurationMs>(tail_stop - prev, 0);
      const DurationMs dch = std::min(span, dch_tail);
      tail_dch += dch;
      tail_fach += std::min<DurationMs>(span - dch, fach_tail);

      // Promotion class by boolean arithmetic: inside the surviving
      // DCH tail -> free, inside the FACH tail -> FACH promotion,
      // otherwise (expired or cut) -> cold IDLE promotion.
      const bool gap = b > prev;
      const bool within = b <= cut;
      const bool in_dch = gap & within & (b < warm_dch_end);
      const bool in_fach =
          gap & within & !(b < warm_dch_end) & (b < warm_fach_end);
      const bool cold = gap & !(in_dch | in_fach);
      const DurationMs promo =
          static_cast<DurationMs>(in_fach) * params.promo_fach_ms +
          static_cast<DurationMs>(cold) * params.promo_idle_ms;
      promotions += promo > 0;
      promo_ms += promo;
      active_ms += dur;
      connected_until = std::max(b, prev) + promo + dur;
    }

    // Trailing tail after the final transfer, clipped at the horizon
    // and the allowed window.
    if (connected_until < horizon_end) {
      const TimeMs cut = allowed_until(connected_until);
      const TimeMs stop =
          std::min({horizon_end, cut,
                    connected_until + dch_tail + fach_tail});
      const DurationMs span =
          std::max<DurationMs>(stop - connected_until, 0);
      const DurationMs dch = std::min(span, dch_tail);
      tail_dch += dch;
      tail_fach += std::min<DurationMs>(span - dch, fach_tail);
    }
  }

  // Energy falls out of the four integer totals exactly as in the
  // reference — same terms, same order, bit-identical doubles.
  RadioAccounting acc;
  acc.active_ms = active_ms;
  acc.tail_dch_ms = tail_dch;
  acc.tail_fach_ms = tail_fach;
  acc.promo_ms = promo_ms;
  acc.promotions = promotions;
  acc.radio_on_ms = active_ms + tail_dch + tail_fach + promo_ms;
  acc.energy_j = energy_joules(params.dch_mw, acc.active_ms) +
                 energy_joules(params.dch_mw, acc.tail_dch_ms) +
                 energy_joules(params.fach_mw, acc.tail_fach_ms) +
                 energy_joules(params.promo_mw, acc.promo_ms);
  return acc;
}

RadioAccounting account_interval_set(const IntervalSet& transfers,
                                     const RadioPowerParams& params,
                                     TimeMs horizon_end,
                                     const IntervalSet* radio_allowed) {
  // Scatter the AoS intervals into reusable per-thread columns: the
  // kernel wants SoA and the accounting hot path must not allocate in
  // steady state.
  thread_local std::vector<TimeMs> begins;
  thread_local std::vector<TimeMs> ends;
  const std::vector<Interval>& ivs = transfers.intervals();
  begins.clear();
  ends.clear();
  begins.reserve(ivs.size());
  ends.reserve(ivs.size());
  for (const Interval& iv : ivs) {
    begins.push_back(iv.begin);
    ends.push_back(iv.end);
  }
  return account_columns(begins, ends, params, horizon_end, radio_allowed);
}

}  // namespace netmaster::engine
