#include "engine/radio_timeline.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace netmaster::engine {

RadioTimeline::RadioTimeline(TimeMs horizon) : horizon_(horizon) {
  NM_REQUIRE(horizon >= 0, "timeline horizon must be non-negative");
}

void RadioTimeline::allow(TimeMs begin, TimeMs end) {
  begin = std::max<TimeMs>(begin, 0);
  end = std::min(end, horizon_);
  if (begin < end) allowed_.add(begin, end);
}

void RadioTimeline::allow(const IntervalSet& set) {
  for (const Interval& iv : set.intervals()) allow(iv.begin, iv.end);
}

void RadioTimeline::allow_windows(const std::vector<Interval>& windows) {
  for (const Interval& w : windows) allow(w.begin, w.end);
}

void RadioTimeline::allow_transfers(
    const std::vector<sim::ExecutedTransfer>& transfers, DurationMs grace) {
  for (const sim::ExecutedTransfer& t : transfers) {
    allow(t.start, t.start + t.duration + grace);
  }
}

void RadioTimeline::allow_wakes(const std::vector<duty::WakeEvent>& wakes) {
  for (const duty::WakeEvent& w : wakes) allow(w.time, w.time + w.window);
}

}  // namespace netmaster::engine
