#include "engine/radio_timeline.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace netmaster::engine {

RadioTimeline::RadioTimeline(TimeMs horizon) : horizon_(horizon) {
  NM_REQUIRE(horizon >= 0, "timeline horizon must be non-negative");
}

void RadioTimeline::allow(TimeMs begin, TimeMs end) {
  begin = std::max<TimeMs>(begin, 0);
  end = std::min(end, horizon_);
  if (begin < end) allowed_.add(begin, end);
}

void RadioTimeline::allow(const IntervalSet& set) {
  for (const Interval& iv : set.intervals()) allow(iv.begin, iv.end);
}

void RadioTimeline::allow_windows(const std::vector<Interval>& windows) {
  for (const Interval& w : windows) allow(w.begin, w.end);
}

void RadioTimeline::allow_transfers(
    const std::vector<sim::ExecutedTransfer>& transfers, DurationMs grace) {
  for (const sim::ExecutedTransfer& t : transfers) {
    if (t.radio != RadioId::kCellular) continue;
    allow(t.start, t.start + t.duration + grace);
  }
}

void RadioTimeline::allow_wakes(const std::vector<duty::WakeEvent>& wakes) {
  for (const duty::WakeEvent& w : wakes) allow(w.time, w.time + w.window);
}

namespace {

/// mW * ms -> joules. Same expression as power/radio_model.cpp so the
/// final doubles are bit-identical.
constexpr double energy_joules(double mw, DurationMs ms) {
  return mw * static_cast<double>(ms) * 1e-6;
}

constexpr TimeMs kFar = std::numeric_limits<TimeMs>::max() / 4;

}  // namespace

RadioAccounting account_columns(std::span<const TimeMs> begins,
                                std::span<const TimeMs> ends,
                                const RadioModel& model,
                                TimeMs horizon_end,
                                const IntervalSet* radio_allowed) {
  model.validate();
  const std::size_t n = begins.size();
  NM_REQUIRE(n == ends.size(),
             "transfer columns must have equal lengths");

  const std::vector<Interval>* allowed =
      radio_allowed != nullptr ? &radio_allowed->intervals() : nullptr;

  // Validation pass, in index order so a doubly-invalid input raises
  // the same error the reference implementation would. The canonical
  // columns are sorted, so the allowed-set membership check is one
  // monotone merge cursor instead of n binary searches.
  {
    std::size_t j = 0;
    for (std::size_t k = 0; k < n; ++k) {
      NM_REQUIRE(ends[k] <= horizon_end,
                 "transfer extends beyond the accounting horizon");
      if (allowed != nullptr) {
        const TimeMs b = begins[k];
        while (j < allowed->size() && (*allowed)[j].end <= b) ++j;
        NM_REQUIRE(j < allowed->size() && (*allowed)[j].begin <= b,
                   "transfer outside the radio-allowed set");
      }
    }
  }

  const std::size_t nt = model.num_tails;
  const DurationMs total_tail = model.total_tail_ms();
  DurationMs active_ms = 0;
  std::array<DurationMs, kMaxRadioTiers> tail_ms = {0, 0, 0, 0};
  DurationMs promo_ms = 0;
  DurationMs assoc_total = 0;
  int promotions = 0;
  int associations = 0;

  // End-of-allowed-window cursor. Query points (the running
  // connected_until) are non-decreasing, so one forward scan serves
  // every lookup including the trailing tail.
  std::size_t aj = 0;
  const auto allowed_until = [&](TimeMs t) -> TimeMs {
    if (allowed == nullptr) return kFar;
    while (aj < allowed->size() && (*allowed)[aj].end <= t) ++aj;
    if (aj < allowed->size() && (*allowed)[aj].begin <= t) {
      return (*allowed)[aj].end;
    }
    return t;
  };

  // Drains a tail span through the tier chain (clamped per tier).
  const auto charge_tail = [&](DurationMs span) {
    for (std::size_t i = 0; i < nt; ++i) {
      const DurationMs d = std::min(span, model.tails[i].duration_ms);
      tail_ms[i] += d;
      span -= d;
    }
  };

  TimeMs connected_until = 0;
  if (n > 0) {
    // Peel the first transfer: always a cold attach from IDLE
    // (association burst, if the model has one, then the promotion).
    const DurationMs promo0 = model.promo_idle_ms;
    promotions += promo0 > 0;
    promo_ms += promo0;
    assoc_total += model.assoc_ms;
    associations += model.assoc_ms > 0;
    const DurationMs dur0 = ends[0] - begins[0];
    active_ms += dur0;
    connected_until = begins[0] + model.assoc_ms + promo0 + dur0;

    for (std::size_t k = 1; k < n; ++k) {
      const TimeMs b = begins[k];
      const DurationMs dur = ends[k] - b;
      const TimeMs prev = connected_until;
      const TimeMs cut = allowed_until(prev);
      const TimeMs warm_end = prev + total_tail;

      // Inter-transfer tail: runs from prev to min(b, cut, tail
      // expiry). The no-gap case (b <= prev: the connected period
      // simply extends) clamps the span to zero — no branch.
      const TimeMs tail_stop = std::min({b, cut, warm_end});
      charge_tail(std::max<DurationMs>(tail_stop - prev, 0));

      // Promotion class by boolean arithmetic: a monotone scan over
      // the tier boundaries selects the surviving tier the transfer
      // lands in (paying that tier's re-promotion); a gap past the
      // chain — or past the allowed cut — is a cold attach.
      const bool gap = b > prev;
      const bool within = b <= cut;
      DurationMs promo = 0;
      bool matched = false;
      TimeMs boundary = prev;
      for (std::size_t i = 0; i < nt; ++i) {
        boundary += model.tails[i].duration_ms;
        const bool in_tier = gap & within & !matched & (b < boundary);
        promo += static_cast<DurationMs>(in_tier) * model.tails[i].promo_ms;
        matched |= in_tier;
      }
      const bool cold = gap & !matched;
      promo += static_cast<DurationMs>(cold) * model.promo_idle_ms;
      const DurationMs assoc =
          static_cast<DurationMs>(cold) * model.assoc_ms;
      assoc_total += assoc;
      associations += assoc > 0;
      promotions += promo > 0;
      promo_ms += promo;
      active_ms += dur;
      connected_until = std::max(b, prev) + assoc + promo + dur;
    }

    // Trailing tail after the final transfer, clipped at the horizon
    // and the allowed window.
    if (connected_until < horizon_end) {
      const TimeMs cut = allowed_until(connected_until);
      const TimeMs stop =
          std::min({horizon_end, cut, connected_until + total_tail});
      charge_tail(std::max<DurationMs>(stop - connected_until, 0));
    }
  }

  // Energy falls out of the integer totals exactly as in the
  // reference — same terms, same order, bit-identical doubles.
  RadioAccounting acc;
  acc.active_ms = active_ms;
  acc.tail_tier_ms = tail_ms;
  acc.promo_ms = promo_ms;
  acc.assoc_ms = assoc_total;
  acc.promotions = promotions;
  acc.associations = associations;
  acc.radio_on_ms = active_ms + promo_ms + assoc_total;
  for (std::size_t i = 0; i < nt; ++i) acc.radio_on_ms += tail_ms[i];
  acc.energy_j = energy_joules(model.active_mw, acc.active_ms);
  for (std::size_t i = 0; i < nt; ++i) {
    acc.energy_j += energy_joules(model.tails[i].power_mw, tail_ms[i]);
  }
  acc.energy_j += energy_joules(model.promo_mw, acc.promo_ms);
  acc.energy_j += energy_joules(model.assoc_mw, acc.assoc_ms);
  return acc;
}

RadioAccounting account_interval_set(const IntervalSet& transfers,
                                     const RadioModel& model,
                                     TimeMs horizon_end,
                                     const IntervalSet* radio_allowed) {
  // Scatter the AoS intervals into reusable per-thread columns: the
  // kernel wants SoA and the accounting hot path must not allocate in
  // steady state.
  thread_local std::vector<TimeMs> begins;
  thread_local std::vector<TimeMs> ends;
  const std::vector<Interval>& ivs = transfers.intervals();
  begins.clear();
  ends.clear();
  begins.reserve(ivs.size());
  ends.reserve(ivs.size());
  for (const Interval& iv : ivs) {
    begins.push_back(iv.begin);
    ends.push_back(iv.end);
  }
  return account_columns(begins, ends, model, horizon_end, radio_allowed);
}

}  // namespace netmaster::engine
