#include "sim/accounting.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "engine/radio_timeline.hpp"

namespace netmaster::sim {

SimReport account(const UserTrace& eval, const PolicyOutcome& outcome,
                  const RadioModel& params) {
  for (const ExecutedTransfer& t : outcome.transfers) {
    NM_REQUIRE(t.radio == RadioId::kCellular,
               "single-radio accounting given a non-cellular transfer");
  }
  RadioSet radios;
  radios.cellular = params;
  return account(eval, outcome, radios);
}

SimReport account(const UserTrace& eval, const PolicyOutcome& outcome,
                  const RadioSet& radios) {
  radios.validate();
  SimReport report;
  report.policy_name = outcome.policy_name;
  report.horizon_ms = eval.trace_end();
  report.degraded = outcome.path == ExecutionPath::kDegradedFallback;
  report.degraded_reason = outcome.degraded_reason;
  report.drift_score = outcome.drift_score;

  // Consistency: every activity executed exactly once, inside the
  // horizon. Transfers are partitioned by their assigned radio — each
  // interface runs an independent state machine.
  NM_REQUIRE(outcome.transfers.size() == eval.activities.size(),
             "outcome must execute every activity exactly once");
  std::vector<bool> seen(eval.activities.size(), false);
  IntervalSet executed;       // cellular transfers
  IntervalSet executed_wifi;  // Wi-Fi offloads
  for (const ExecutedTransfer& t : outcome.transfers) {
    NM_REQUIRE(t.activity_index < eval.activities.size(),
               "transfer references unknown activity");
    NM_REQUIRE(!seen[t.activity_index], "activity executed twice");
    seen[t.activity_index] = true;
    NM_REQUIRE(t.start >= 0 && t.start + t.duration <= report.horizon_ms,
               "transfer outside the accounting horizon");
    if (t.radio == RadioId::kWifi) {
      executed_wifi.add(t.start, t.start + t.duration);
      ++report.wifi_transfer_count;
    } else {
      executed.add(t.start, t.start + t.duration);
    }

    const NetworkActivity& act = eval.activities[t.activity_index];
    report.bytes_down += act.bytes_down;
    report.bytes_up += act.bytes_up;
  }

  // Cellular RRC energy over the executed schedule, under the policy's
  // data switch when it drives one. The vectorized engine kernel is
  // bit-identical to power/radio_model.cpp's account_transfers (the
  // retained reference the differential tests fuzz against).
  if (outcome.radio_allowed.has_value()) {
    // One canonical allowed-set construction: the policy's extra
    // windows, the executed cellular transfers themselves, and the
    // duty probes. Wi-Fi transfers do not extend the cellular switch.
    engine::RadioTimeline timeline(report.horizon_ms);
    timeline.allow(*outcome.radio_allowed);
    timeline.allow(executed);
    timeline.allow_wakes(outcome.wakes);
    const IntervalSet allowed = std::move(timeline).build();
    report.radio = engine::account_interval_set(
        executed, radios.cellular, report.horizon_ms, &allowed);
  } else {
    report.radio = engine::account_interval_set(executed, radios.cellular,
                                                report.horizon_ms);
  }

  // The Wi-Fi interface is not behind the cellular data switch: its
  // PSM tails always run to completion, and every cold attach pays the
  // scan/associate burst the model describes.
  if (!executed_wifi.intervals().empty()) {
    report.wifi = engine::account_interval_set(executed_wifi, radios.wifi,
                                               report.horizon_ms);
    report.wifi_energy_j = report.wifi.energy_j;
    report.wifi_on_ms = report.wifi.radio_on_ms;
  }
  report.transfer_energy_j = report.radio.energy_j + report.wifi_energy_j;

  // Duty-cycle wake overhead: probes run the cellular radio at
  // FACH-level power (network attach, no dedicated channel). Fruitful
  // wakes overlap transfers and are not double-charged: only the
  // non-overlap part of each probe window is added.
  for (const duty::WakeEvent& w : outcome.wakes) {
    const DurationMs overlap =
        executed.overlap_length(w.time, w.time + w.window);
    const DurationMs extra = w.window - overlap;
    report.duty_energy_j +=
        radios.cellular.probe_mw() * static_cast<double>(extra) * 1e-6;
    report.radio_on_ms += extra;
  }
  report.wake_count = outcome.wakes.size();
  report.radio_on_ms += report.radio.radio_on_ms + report.wifi_on_ms;
  report.energy_j = report.transfer_energy_j + report.duty_energy_j;

  // Bandwidth utilization: achieved bytes per radio-on second.
  const double on_s = to_seconds(report.radio_on_ms);
  if (on_s > 0.0) {
    report.avg_down_rate_kbps =
        static_cast<double>(report.bytes_down) / 1000.0 / on_s;
    report.avg_up_rate_kbps =
        static_cast<double>(report.bytes_up) / 1000.0 / on_s;
  }
  // Peak rate is a channel property of individual transfers; policies
  // shift transfers in time but do not change their rate (the paper
  // makes the same observation about Fig. 7c).
  for (const NetworkActivity& act : eval.activities) {
    if (act.duration <= 0) continue;
    const double s = to_seconds(act.duration);
    report.peak_down_rate_kbps =
        std::max(report.peak_down_rate_kbps,
                 static_cast<double>(act.bytes_down) / 1000.0 / s);
    report.peak_up_rate_kbps =
        std::max(report.peak_up_rate_kbps,
                 static_cast<double>(act.bytes_up) / 1000.0 / s);
  }

  // User experience.
  report.total_usages = eval.usages.size();
  for (const AppUsage& u : eval.usages) {
    if (outcome.blocked.contains(u.time)) ++report.affected_usages;
  }
  report.interrupts = outcome.interrupts;
  if (report.total_usages > 0) {
    report.affected_fraction =
        static_cast<double>(report.affected_usages + report.interrupts) /
        static_cast<double>(report.total_usages);
  }

  report.deferred_count = outcome.deferral_latency_s.size();
  if (report.deferred_count > 0) {
    double sum = 0.0;
    for (double v : outcome.deferral_latency_s) sum += v;
    report.mean_deferral_latency_s =
        sum / static_cast<double>(report.deferred_count);
  }

  for (const ScreenSession& s : eval.sessions) {
    report.screen_on_ms += s.length();
  }
  return report;
}

}  // namespace netmaster::sim
