// Accounting: PolicyOutcome -> SimReport.
//
// Applies the RRC power model to the executed transfer schedule, adds
// duty-cycle wake overhead, and computes the evaluation metrics of §VI:
// radio energy, radio-on time, achieved bandwidth (bytes per radio-on
// second, the paper's "bandwidth utilization"), peak rates, affected
// user interactions, and deferral latency.
#pragma once

#include <cstdint>
#include <string>

#include "power/radio_model.hpp"
#include "sim/outcome.hpp"
#include "trace/trace.hpp"

namespace netmaster::sim {

/// All §VI metrics for one (trace, policy) run.
struct SimReport {
  std::string policy_name;

  // Energy / radio time.
  double energy_j = 0.0;          ///< transfers + duty overhead
  double transfer_energy_j = 0.0; ///< transfer trajectory energy only
  double duty_energy_j = 0.0;     ///< wake-probe overhead
  DurationMs radio_on_ms = 0;     ///< non-IDLE time incl. wake probes
  RadioAccounting radio;          ///< cellular RRC breakdown
  std::size_t wake_count = 0;

  // Multi-radio breakdown. When the policy assigned transfers to the
  // Wi-Fi interface, its independent state machine is accounted here
  // (no data-switch restriction — the AP association is not behind
  // `svc data disable`) and summed into energy_j / radio_on_ms.
  // All-cellular outcomes leave these exactly zero.
  double wifi_energy_j = 0.0;
  DurationMs wifi_on_ms = 0;
  RadioAccounting wifi;           ///< Wi-Fi PSM breakdown
  std::size_t wifi_transfer_count = 0;

  // Traffic.
  std::int64_t bytes_down = 0;
  std::int64_t bytes_up = 0;
  double avg_down_rate_kbps = 0.0;  ///< bytes_down / radio-on seconds
  double avg_up_rate_kbps = 0.0;
  double peak_down_rate_kbps = 0.0;  ///< best single-activity rate
  double peak_up_rate_kbps = 0.0;

  // User experience.
  std::size_t total_usages = 0;
  std::size_t affected_usages = 0;  ///< usages in blocked windows
  std::size_t interrupts = 0;       ///< explicit wrong decisions
  double affected_fraction = 0.0;   ///< (affected + interrupts) / total
  double mean_deferral_latency_s = 0.0;
  std::size_t deferred_count = 0;

  // Context.
  DurationMs horizon_ms = 0;
  DurationMs screen_on_ms = 0;

  // Degradation provenance (copied from the outcome).
  bool degraded = false;        ///< fallback path produced this run
  std::string degraded_reason;  ///< empty unless degraded
  double drift_score = 0.0;     ///< drift score the policy acted under
};

/// Runs the accountant for a single-radio (cellular-only) outcome.
/// Throws netmaster::Error when the outcome is inconsistent with the
/// trace (missing/duplicate activities, transfers beyond the horizon)
/// or assigns any transfer to a non-cellular radio. RadioPowerParams
/// converts implicitly, so legacy call sites are unchanged.
SimReport account(const UserTrace& eval, const PolicyOutcome& outcome,
                  const RadioModel& params);

/// Multi-radio accountant: transfers are partitioned by their assigned
/// RadioId and each interface's state machine is integrated
/// independently — the cellular partition under the policy's data
/// switch exactly as the single-radio path, the Wi-Fi partition with
/// free-running PSM tails and per-cold-attach association costs.
/// Outcomes with no Wi-Fi transfers reproduce the single-radio report
/// bit for bit.
SimReport account(const UserTrace& eval, const PolicyOutcome& outcome,
                  const RadioSet& radios);

}  // namespace netmaster::sim
