// The interface between scheduling policies and the accounting
// simulator.
//
// A policy consumes an evaluation trace chronologically (online
// semantics are the policy's responsibility) and emits a PolicyOutcome:
// when each network activity actually executed, which windows the
// policy spent holding the radio off while work or users were waiting,
// the duty-cycle wake schedule, and explicit wrong decisions. The
// accounting layer (sim/accounting.hpp) turns an outcome into energy,
// radio-time, bandwidth, and user-experience metrics.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/interval.hpp"
#include "common/time.hpp"
#include "duty/duty_cycle.hpp"
#include "power/radio_model.hpp"

namespace netmaster::sim {

/// One network activity as actually executed by a policy.
struct ExecutedTransfer {
  std::size_t activity_index = 0;  ///< into the eval trace's activities
  TimeMs start = 0;                ///< executed start time
  DurationMs duration = 0;         ///< executed transfer time
  /// Which radio interface carried the transfer. Single-radio policies
  /// leave the default; the multi-radio co-scheduler assigns Wi-Fi
  /// offloads explicitly. Wi-Fi transfers are accounted on their own
  /// state machine and do not hold the cellular data switch open.
  RadioId radio = RadioId::kCellular;
};

/// Which decision path produced an outcome. Policies with a graceful
/// degradation mode (NetMaster) report when they abandoned their normal
/// algorithm for the safe fallback schedule.
enum class ExecutionPath {
  kNormal = 0,            ///< the policy's own algorithm ran
  kDegradedFallback = 1,  ///< safe fallback schedule was substituted
};

inline const char* execution_path_name(ExecutionPath path) {
  return path == ExecutionPath::kNormal ? "normal" : "degraded-fallback";
}

/// Everything a policy did over the evaluation window.
struct PolicyOutcome {
  std::string policy_name;

  /// Decision path taken (see ExecutionPath). When degraded,
  /// `degraded_reason` says why (low confidence, short training, ...).
  ExecutionPath path = ExecutionPath::kNormal;
  std::string degraded_reason;

  /// Habit-drift score in [0, 1] the policy acted under (0 when no
  /// drift detector feeds the policy). High drift shrinks the model
  /// confidence the robustness gate sees — see
  /// policy::RobustnessConfig::drift_score.
  double drift_score = 0.0;

  /// Every activity of the eval trace, with its executed timing. A
  /// policy must execute each activity exactly once (checked by the
  /// accountant) — NetMaster defers, it never drops.
  std::vector<ExecutedTransfer> transfers;

  /// Windows in which the policy held the radio off although a user
  /// might need it (deferral windows of delay/batch schemes; inactive
  /// predicted slots for NetMaster when the fallback path failed).
  /// A foreground usage beginning inside one counts as affected.
  IntervalSet blocked;

  /// Duty-cycle wake probes (NetMaster only; empty otherwise).
  std::vector<duty::WakeEvent> wakes;

  /// When set, the policy drives a data switch (svc data enable/
  /// disable): the radio may be non-IDLE only inside this set, so RRC
  /// tails are cut at its boundaries. The accountant automatically
  /// unions the executed transfer intervals in, so policies only list
  /// the *extra* allowed time (real screen sessions, wake probes).
  /// Unset models the stock radio with full tails.
  std::optional<IntervalSet> radio_allowed;

  /// Explicit wrong decisions: the user had to manually re-enable data
  /// (§VI-B). Counted in addition to blocked-window hits.
  std::size_t interrupts = 0;

  /// Unpredicted activities that were released by a duty-cycle wake.
  std::size_t duty_releases = 0;

  /// Per-deferred-activity latency (executed start − arrival), seconds.
  std::vector<double> deferral_latency_s;
};

}  // namespace netmaster::sim
