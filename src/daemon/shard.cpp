#include "daemon/shard.hpp"

#include <stdexcept>
#include <utility>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace netmaster::daemon {

namespace {

struct ShardMetrics {
  obs::Counter& ingested;
  obs::Counter& dropped;
  /// Commands enqueued across *all* shards: every post adds one, every
  /// worker subtracts the batch it drained. Deltas, not set() — a
  /// last-writer-wins snapshot of one shard's size is meaningless once
  /// num_shards > 1.
  obs::Gauge& queue_depth;

  static ShardMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static ShardMetrics m{
        reg.counter("daemon.ingest.events"),
        reg.counter("daemon.ingest.dropped"),
        reg.gauge("daemon.shard.queue_depth"),
    };
    return m;
  }
};

}  // namespace

ShardStats& ShardStats::operator+=(const ShardStats& other) {
  users += other.users;
  users_trained += other.users_trained;
  users_finished += other.users_finished;
  events += other.events;
  late_events += other.late_events;
  dropped_events += other.dropped_events;
  days_folded += other.days_folded;
  refreshes += other.refreshes;
  alarms += other.alarms;
  schedules += other.schedules;
  queue_depth += other.queue_depth;
  return *this;
}

Shard::Shard(int index, std::size_t queue_capacity,
             policy::NetMasterConfig policy_config,
             service::AdaptationConfig adapt)
    : index_(index),
      capacity_(queue_capacity == 0 ? 1 : queue_capacity),
      policy_config_(policy_config),
      adapt_(adapt) {
  worker_ = std::thread([this] { run(); });
}

Shard::~Shard() { stop(); }

void Shard::post(Command command) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock,
                 [&] { return stopping_ || queue_.size() < capacity_; });
  NM_REQUIRE(!stopping_, "command posted to a stopped shard");
  queue_.push_back(std::move(command));
  ShardMetrics::get().queue_depth.add(1.0);
  lock.unlock();
  not_empty_.notify_one();
}

void Shard::add_user(UserSessionConfig config) {
  AddUserCmd cmd;
  cmd.config = std::move(config);
  std::future<void> done = cmd.done.get_future();
  post(std::move(cmd));
  done.get();
}

void Shard::ingest(UserId user, const service::Record& record) {
  post(IngestCmd{user, record});
}

void Shard::finish(UserId user) { post(FinishCmd{user}); }

ScheduleResult Shard::schedule(UserId user) {
  ScheduleCmd cmd;
  cmd.user = user;
  std::future<ScheduleResult> result = cmd.result.get_future();
  post(std::move(cmd));
  return result.get();
}

ShardStats Shard::stats() {
  StatsCmd cmd;
  std::future<ShardStats> result = cmd.result.get_future();
  post(std::move(cmd));
  return result.get();
}

std::future<void> Shard::drain() {
  DrainCmd cmd;
  std::future<void> done = cmd.done.get_future();
  post(std::move(cmd));
  return done;
}

void Shard::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      // Already stopping; just wait for the worker below.
    }
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  if (worker_.joinable()) worker_.join();
}

void Shard::run() {
  // Flush this worker's span aggregates when it exits so daemon.fold /
  // daemon.mine / daemon.schedule timings reach the global registry.
  struct SpanFlush {
    ~SpanFlush() { obs::flush_thread_spans(); }
  } flush;

  std::deque<Command> batch;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock,
                      [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty() && stopping_) return;
      // Take the whole backlog in one swap: commands apply lock-free
      // and in order, producers get a burst of fresh capacity.
      batch.swap(queue_);
      ShardMetrics::get().queue_depth.add(
          -static_cast<double>(batch.size()));
    }
    not_full_.notify_all();
    for (Command& command : batch) apply(command);
    batch.clear();
  }
}

void Shard::apply(Command& command) {
  if (auto* ingest = std::get_if<IngestCmd>(&command)) {
    const auto it = sessions_.find(ingest->user);
    if (it == sessions_.end()) {
      ++dropped_events_;
      ShardMetrics::get().dropped.add(1);
      return;
    }
    try {
      it->second->ingest(ingest->record);
      ShardMetrics::get().ingested.add(1);
    } catch (const std::exception&) {
      ++dropped_events_;
      ShardMetrics::get().dropped.add(1);
    }
    return;
  }
  if (auto* add = std::get_if<AddUserCmd>(&command)) {
    try {
      const UserId id = add->config.user;
      NM_REQUIRE(sessions_.find(id) == sessions_.end(),
                 "user already registered");
      sessions_.emplace(id, std::make_unique<UserSession>(
                                add->config, policy_config_, adapt_));
      add->done.set_value();
    } catch (...) {
      add->done.set_exception(std::current_exception());
    }
    return;
  }
  if (auto* fin = std::get_if<FinishCmd>(&command)) {
    const auto it = sessions_.find(fin->user);
    if (it == sessions_.end()) {
      ++dropped_events_;
      ShardMetrics::get().dropped.add(1);
      return;
    }
    try {
      it->second->finish();
    } catch (const std::exception&) {
      ++dropped_events_;
      ShardMetrics::get().dropped.add(1);
    }
    return;
  }
  if (auto* sched = std::get_if<ScheduleCmd>(&command)) {
    try {
      const auto it = sessions_.find(sched->user);
      NM_REQUIRE(it != sessions_.end(), "unknown user");
      sched->result.set_value(it->second->schedule());
      ++schedules_served_;
    } catch (...) {
      sched->result.set_exception(std::current_exception());
    }
    return;
  }
  if (auto* stats = std::get_if<StatsCmd>(&command)) {
    stats->result.set_value(snapshot_locked_free());
    return;
  }
  if (auto* drain = std::get_if<DrainCmd>(&command)) {
    drain->done.set_value();
    return;
  }
}

ShardStats Shard::snapshot_locked_free() const {
  // Runs on the worker thread: session state needs no lock; only the
  // queue depth peek takes the queue mutex.
  ShardStats out;
  out.users = sessions_.size();
  for (const auto& [id, session] : sessions_) {
    const UserSessionStats& s = session->stats();
    out.users_trained += s.trained ? 1 : 0;
    out.users_finished += s.finished ? 1 : 0;
    out.events += s.events;
    out.late_events += s.late_events;
    out.days_folded += s.days_folded;
    out.refreshes += s.refreshes;
    out.alarms += s.alarms;
  }
  out.dropped_events = dropped_events_;
  out.schedules = schedules_served_;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.queue_depth = queue_.size();
  }
  return out;
}

}  // namespace netmaster::daemon
