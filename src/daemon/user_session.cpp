#include "daemon/user_session.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "engine/trace_index.hpp"
#include "fault/sanitize.hpp"
#include "mining/habits.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace netmaster::daemon {

namespace {

/// Fold/mine/refresh telemetry, resolved once per process.
struct SessionMetrics {
  obs::Counter& folds;
  obs::Counter& late;
  obs::Counter& models;
  obs::Counter& refreshes;
  obs::Counter& alarms;

  static SessionMetrics& get() {
    obs::Registry& reg = obs::Registry::global();
    static SessionMetrics m{
        reg.counter("daemon.fold.days"),
        reg.counter("daemon.ingest.late_events"),
        reg.counter("daemon.mine.models"),
        reg.counter("daemon.refresh.count"),
        reg.counter("daemon.drift.alarms"),
    };
    return m;
  }
};

}  // namespace

UserSession::UserSession(UserSessionConfig config,
                         policy::NetMasterConfig policy_config,
                         service::AdaptationConfig adapt)
    : config_(std::move(config)),
      policy_config_(policy_config),
      adapt_(adapt),
      detector_(adapt.detector) {
  NM_REQUIRE(config_.train_days > 0 && config_.train_days % 7 == 0,
             "train_days must be a positive multiple of 7");
  NM_REQUIRE(config_.num_days > config_.train_days,
             "num_days must exceed train_days");
  NM_REQUIRE(!config_.app_names.empty(), "app table must be non-empty");
  if (adapt_.enable) {
    NM_REQUIRE(adapt_.window_days > 0, "window_days must be positive");
    NM_REQUIRE(adapt_.min_refresh_gap_days > 0,
               "min_refresh_gap_days must be positive");
    NM_REQUIRE(adapt_.backoff_factor >= 1,
               "backoff_factor must be at least 1");
    NM_REQUIRE(adapt_.confidence_ramp_days > 0,
               "confidence_ramp_days must be positive");
  }
  train_end_ = day_start(config_.train_days);
  refresh_gap_ = adapt_.min_refresh_gap_days;
}

void UserSession::ingest(const service::Record& record) {
  ++stats_.events;
  const int day = day_of(std::max<TimeMs>(record.time, 0));
  if (stats_.finished || record.time < 0 || day >= config_.num_days ||
      day < current_day_) {
    // Out of the horizon, or its day already folded: the store keeps
    // the record (full-window reconstructions still see it) but the
    // at-most-once fold discipline never re-folds a completed day.
    ++stats_.late_events;
    SessionMetrics::get().late.add(1);
    if (!stats_.finished && record.time >= 0) {
      store_.append(record);
      if (record.time >= train_end_ && day < config_.num_days) {
        // The record lands inside the evaluation horizon, so the next
        // schedule() reconstruction includes it — count it into the
        // cache key and drop the schedule computed without it.
        ++eval_events_;
        cache_valid_ = false;
      }
    }
    return;
  }
  if (day > current_day_) fold_through(day);

  // Ingest-side session pairing, mirroring RecordStore::reconstruct:
  // the first ON opens, the first OFF closes, repeats are ignored. The
  // state feeds the synthetic screen-on edge when a session straddles
  // the training/evaluation boundary (slice_days clips; the eval
  // reconstruction must see the same clipped session).
  if (record.kind == service::RecordKind::kScreenOn) {
    if (screen_open_since_ < 0) screen_open_since_ = record.time;
  } else if (record.kind == service::RecordKind::kScreenOff) {
    screen_open_since_ = -1;
  }

  store_.append(record);
  window_records_.push_back(record);
  if (record.time >= train_end_) {
    ++eval_events_;
    cache_valid_ = false;
  }
}

void UserSession::finish() {
  if (stats_.finished) return;
  fold_through(config_.num_days);
  stats_.finished = true;
}

void UserSession::fold_through(int day) {
  const int until = std::min(day, config_.num_days);
  while (current_day_ < until) {
    fold_day(current_day_);
    ++current_day_;
    if (current_day_ == config_.train_days) complete_training();
    // Keep only the trailing day the next fold's window needs.
    const TimeMs keep_from = day_start(current_day_ - 1);
    std::erase_if(window_records_, [&](const service::Record& r) {
      return r.time < keep_from;
    });
  }
}

mining::DayContribution UserSession::summarize_window(int day) const {
  // Reconstruct days [day-1, day] shifted to a 2-day (1-day for day 0)
  // window: sessions spanning the leading midnight pair up, sessions
  // still open at the window's end clamp to it — exactly the screen
  // coverage the full-history index derives for `day`. The summary is
  // then patched to the absolute day's regime.
  const int first = std::max(day - 1, 0);
  const TimeMs lo = day_start(first);
  const TimeMs hi = day_start(day + 1);
  service::RecordStore window;
  for (const service::Record& r : window_records_) {
    if (r.time < lo || r.time >= hi) continue;
    service::Record shifted = r;
    shifted.time -= lo;
    window.append(shifted);
  }
  const fault::SanitizeResult repaired =
      window.to_trace_tolerant(config_.user, day + 1 - first,
                               config_.app_names);
  const engine::TraceIndex index(repaired.trace);
  mining::DayContribution c =
      mining::IncrementalHabitMiner::summarize_day(day - first, index);
  c.kind = mining::day_kind(day);
  return c;
}

void UserSession::fold_day(int day) {
  obs::SpanScope span("daemon.fold");
  const mining::DayContribution c = summarize_window(day);
  ++stats_.days_folded;
  SessionMetrics::get().folds.add(1);

  if (day < config_.train_days) {
    miner_.observe_summary(c);
    return;
  }

  // Evaluation day: the online executive's midnight tick. train_days
  // is a multiple of 7, so the relative day keeps its regime.
  if (!adapt_.enable) return;
  const int rel = day - config_.train_days;
  detector_.observe_summary(rel, c);
  stats_.drift_score = detector_.score();
  if (detector_.alarmed()) {
    if (!alarm_pending_) {
      alarm_pending_ = true;
      ++stats_.alarms;
      SessionMetrics::get().alarms.add(1);
    }
    // The fold of relative day `rel` happens at the midnight opening
    // relative day rel + 1 — the day the online executive would
    // attempt its refresh.
    const int refresh_day = rel + 1;
    if (refresh_day >= next_refresh_day_) attempt_refresh(refresh_day);
  }
}

void UserSession::complete_training() {
  obs::SpanScope span("daemon.mine");
  // One-time whole-training reconstruction: the sanitizer's quality
  // ledger scales the snapshot's confidence exactly as the batch
  // miner's does, and SpecialApps wants the training trace (the
  // incremental counters only carry per-hour aggregates).
  service::RecordStore store;
  for (const service::Record& r : training_records()) store.append(r);
  const fault::SanitizeResult repaired = store.to_trace_tolerant(
      config_.user, config_.train_days, config_.app_names);
  mining::HabitModel model =
      miner_.snapshot(repaired.report.quality());
  special_ = mining::SpecialApps::detect(repaired.trace);
  policy_ = std::make_unique<policy::NetMasterPolicy>(
      std::move(model), special_, policy_config_);
  if (adapt_.enable) {
    // Seed the drift banks with the training history and re-anchor, as
    // the online executive does: drift is measured relative to the
    // habits the deployed model was mined from.
    detector_.observe_index(engine::TraceIndex(repaired.trace));
    detector_.notify_adapted();
  }
  eval_screen_open_ =
      screen_open_since_ >= 0 && screen_open_since_ < train_end_;
  stats_.trained = true;
  stats_.model_version = 1;
  cache_valid_ = false;
  SessionMetrics::get().models.add(1);
}

void UserSession::attempt_refresh(int eval_day) {
  obs::SpanScope span("daemon.refresh");
  ++stats_.refresh_attempts;
  // Mirror of service/online_sim.cpp attempt_refresh: windowed re-mine
  // from the post-changepoint evaluation records, confidence ramped by
  // the window length, adopted only past the robustness gate. One
  // divergence: the horizon filter here closes a boundary-straddling
  // session by the reconstruction clamp instead of the sanitizer's
  // clip, so that edge case skips the ledger's clamp penalty.
  const int changepoint =
      std::clamp(detector_.changepoint_day(), 0, eval_day - 1);
  const int start = std::max(changepoint, eval_day - adapt_.window_days);
  service::RecordStore store;
  for (const service::Record& r : eval_records(eval_day)) {
    store.append(r);
  }
  const fault::SanitizeResult repaired =
      store.to_trace_tolerant(config_.user, eval_day, config_.app_names);
  const engine::TraceIndex seen(repaired.trace);
  mining::HabitModel fresh =
      mining::HabitModel::mine(seen, start, eval_day);
  fresh.scale_confidence(repaired.report.quality());
  fresh.scale_confidence(std::min(
      1.0, static_cast<double>(eval_day - start) /
               static_cast<double>(adapt_.confidence_ramp_days)));
  if (fresh.training_days() >= policy_config_.robustness.min_training_days &&
      fresh.overall_confidence() >=
          policy_config_.robustness.min_confidence) {
    policy_ = std::make_unique<policy::NetMasterPolicy>(
        std::move(fresh), special_, policy_config_);
    detector_.notify_adapted();
    alarm_pending_ = false;
    ++stats_.refreshes;
    ++stats_.model_version;
    refresh_gap_ = adapt_.min_refresh_gap_days;
    cache_valid_ = false;
    SessionMetrics::get().refreshes.add(1);
  } else {
    refresh_gap_ *= adapt_.backoff_factor;
  }
  next_refresh_day_ = eval_day + refresh_gap_;
}

std::vector<service::Record> UserSession::training_records() const {
  std::vector<service::Record> out;
  for (const service::Record& r : store_.all_records()) {
    if (r.time >= train_end_) continue;
    service::Record clipped = r;
    if (clipped.kind == service::RecordKind::kNetworkActivity &&
        clipped.time + clipped.duration > train_end_) {
      // slice_days clips transfers at the slice edge; match it so the
      // sanitizer sees the same training window the batch path mines.
      clipped.duration = train_end_ - clipped.time;
    }
    out.push_back(clipped);
  }
  return out;
}

std::vector<service::Record> UserSession::eval_records(
    int horizon_days) const {
  const TimeMs hi = train_end_ + day_start(horizon_days);
  std::vector<service::Record> out;
  if (eval_screen_open_) {
    // A session straddling the training boundary appears in the
    // evaluation slice clipped to its start; re-open it at the epoch.
    service::Record on;
    on.kind = service::RecordKind::kScreenOn;
    on.time = 0;
    out.push_back(on);
  }
  for (const service::Record& r : store_.all_records()) {
    if (r.time < train_end_ || r.time >= hi) continue;
    service::Record shifted = r;
    shifted.time -= train_end_;
    out.push_back(shifted);
  }
  return out;
}

const ScheduleResult& UserSession::schedule() {
  NM_REQUIRE(policy_ != nullptr,
             "schedule requested before the training window completed");
  if (cache_valid_ && cache_events_ == eval_events_ &&
      cache_version_ == stats_.model_version) {
    return cached_;
  }
  obs::SpanScope span("daemon.schedule");
  service::RecordStore store;
  for (const service::Record& r : eval_records(eval_days())) {
    store.append(r);
  }
  const fault::SanitizeResult repaired =
      store.to_trace_tolerant(config_.user, eval_days(),
                              config_.app_names);
  const engine::TraceIndex index(repaired.trace);
  cached_.outcome = policy_->run(index);
  cached_.model_version = stats_.model_version;
  cached_.degraded = policy_->degraded();
  cached_.degraded_reason = policy_->degraded_reason();
  cache_valid_ = true;
  cache_events_ = eval_events_;
  cache_version_ = stats_.model_version;
  return cached_;
}

}  // namespace netmaster::daemon
