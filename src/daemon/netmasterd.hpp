// netmasterd — the long-lived NetMaster service.
//
// Where the eval pipeline replays recorded traces in batch, the daemon
// ingests monitoring events as a stream and serves schedules on
// demand. Users are partitioned across N shards by hash(user) % N
// (daemon/shard.hpp); each shard's worker owns its users' sessions
// outright, so the ingest→fold→mine→schedule path never takes a
// cross-shard lock.
//
// Two entry surfaces share the same core:
//
//   * the direct API (add_user/ingest/finish_user/schedule/...) —
//     used by tests, the bench, and the load generator for zero-copy
//     in-process driving;
//   * the line protocol (net/protocol.hpp) via handle_line(), served
//     over any net::Listener (TCP or in-process) by serve().
//
// drain() resolves when every event enqueued before it has been fully
// applied (folded, mined, reflected in schedules) — the FIFO shard
// queues make that a token per shard. shutdown() drains, stops the
// shards, and closes the listener and every open connection, so a
// blocked serve() returns.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "daemon/shard.hpp"
#include "net/transport.hpp"

namespace netmaster::daemon {

struct DaemonConfig {
  int num_shards = 4;
  /// Per-shard command queue bound; full queues block producers
  /// (ingest backpressure).
  std::size_t queue_capacity = 8192;
  policy::NetMasterConfig policy;
  /// Drift adaptation of the serving models, on by default — the
  /// daemon is the online deployment the adaptation loop exists for.
  /// Stationary streams never alarm, so batch equivalence holds.
  service::AdaptationConfig adapt;

  DaemonConfig() { adapt.enable = true; }
};

struct DaemonStats {
  ShardStats totals;  ///< summed across shards
  int num_shards = 0;
};

class Netmasterd {
 public:
  explicit Netmasterd(DaemonConfig config = {});
  ~Netmasterd();

  Netmasterd(const Netmasterd&) = delete;
  Netmasterd& operator=(const Netmasterd&) = delete;

  const DaemonConfig& config() const { return config_; }

  // ---- Direct API (thread-safe; all routes through the shards). ----
  void add_user(UserSessionConfig config);
  void ingest(UserId user, const service::Record& record);
  void finish_user(UserId user);
  ScheduleResult schedule(UserId user);
  DaemonStats stats();
  /// Blocks until every previously-enqueued event has been applied.
  void drain();
  /// Drains, stops the shards, closes the listener and every open
  /// connection. Idempotent; the daemon accepts no work afterwards.
  void shutdown();

  // ---- Protocol surface. ----
  /// Applies one request line, returns the response line. Malformed
  /// or failing requests return `err ...`; the daemon never throws on
  /// wire input. A well-formed `shutdown` request sets
  /// `*shutdown_requested` (when given) and leaves the actual
  /// shutdown to the caller, so it can flush the reply first.
  std::string handle_line(const std::string& line,
                          bool* shutdown_requested = nullptr);

  /// Accept loop: serves connections (one thread each) until the
  /// listener closes — which shutdown() triggers, including via an
  /// in-band `shutdown` request. Connection workers reap themselves
  /// when their conversation ends (no per-connection state outlives
  /// the peer), and serve() returns only after the last worker has
  /// finished. Blocks; run it on its own thread for a
  /// concurrently-driven daemon.
  void serve(net::Listener& listener);

 private:
  Shard& shard_for(UserId user);
  void close_connections();

  DaemonConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> shutdown_{false};

  std::mutex serve_mutex_;
  std::condition_variable serve_cv_;  ///< signals worker exits
  std::size_t active_workers_ = 0;
  net::Listener* listener_ = nullptr;
  /// Connections with a live worker; each worker removes its own
  /// entry on exit, shutdown() wakes them all via close().
  std::vector<std::shared_ptr<net::Connection>> connections_;
};

}  // namespace netmaster::daemon
