#include "daemon/netmasterd.hpp"

#include <cstdint>
#include <exception>
#include <sstream>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"

namespace netmaster::daemon {

namespace {

/// FNV-1a over the executed transfers — a cheap wire-comparable
/// fingerprint of a schedule (two bit-identical schedules share it).
std::uint64_t schedule_digest(const sim::PolicyOutcome& outcome) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const sim::ExecutedTransfer& t : outcome.transfers) {
    mix(static_cast<std::uint64_t>(t.activity_index));
    mix(static_cast<std::uint64_t>(t.start));
    mix(static_cast<std::uint64_t>(t.duration));
  }
  return h;
}

}  // namespace

Netmasterd::Netmasterd(DaemonConfig config) : config_(config) {
  NM_REQUIRE(config_.num_shards > 0, "num_shards must be positive");
  shards_.reserve(static_cast<std::size_t>(config_.num_shards));
  for (int i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, config_.queue_capacity, config_.policy, config_.adapt));
  }
}

Netmasterd::~Netmasterd() { shutdown(); }

Shard& Netmasterd::shard_for(UserId user) {
  // Fibonacci hashing of the id; user ids are often small and dense,
  // and modulo alone would put a sequential fleet on few shards.
  const std::uint64_t h =
      static_cast<std::uint64_t>(user) * 11400714819323198485ULL;
  return *shards_[static_cast<std::size_t>(
      h % static_cast<std::uint64_t>(shards_.size()))];
}

void Netmasterd::add_user(UserSessionConfig config) {
  NM_REQUIRE(!shutdown_.load(), "daemon is shut down");
  const UserId user = config.user;
  shard_for(user).add_user(std::move(config));
  obs::Registry::global().counter("daemon.users").add(1);
}

void Netmasterd::ingest(UserId user, const service::Record& record) {
  NM_REQUIRE(!shutdown_.load(), "daemon is shut down");
  shard_for(user).ingest(user, record);
}

void Netmasterd::finish_user(UserId user) {
  NM_REQUIRE(!shutdown_.load(), "daemon is shut down");
  shard_for(user).finish(user);
}

ScheduleResult Netmasterd::schedule(UserId user) {
  NM_REQUIRE(!shutdown_.load(), "daemon is shut down");
  return shard_for(user).schedule(user);
}

DaemonStats Netmasterd::stats() {
  NM_REQUIRE(!shutdown_.load(), "daemon is shut down");
  DaemonStats out;
  out.num_shards = static_cast<int>(shards_.size());
  for (auto& shard : shards_) out.totals += shard->stats();
  return out;
}

void Netmasterd::drain() {
  NM_REQUIRE(!shutdown_.load(), "daemon is shut down");
  std::vector<std::future<void>> tokens;
  tokens.reserve(shards_.size());
  for (auto& shard : shards_) tokens.push_back(shard->drain());
  for (auto& token : tokens) token.get();
}

void Netmasterd::shutdown() {
  bool expected = false;
  if (!shutdown_.compare_exchange_strong(expected, true)) return;
  // Stop applies the whole backlog before joining, so an in-band
  // `shutdown` still drains everything enqueued before it.
  for (auto& shard : shards_) shard->stop();
  close_connections();
}

void Netmasterd::close_connections() {
  std::vector<std::shared_ptr<net::Connection>> open;
  net::Listener* listener = nullptr;
  {
    std::lock_guard<std::mutex> lock(serve_mutex_);
    open.swap(connections_);
    listener = listener_;
  }
  if (listener != nullptr) listener->close();
  // close() only wakes each connection's blocked reader (the socket
  // transport defers releasing the descriptor); the workers then wind
  // down and reap themselves, and serve() waits for the last of them.
  for (auto& conn : open) conn->close();
}

std::string Netmasterd::handle_line(const std::string& line,
                                    bool* shutdown_requested) {
  net::Request request;
  std::string error;
  if (!net::parse_request(line, request, error)) {
    return net::err_response(error);
  }
  if (request.kind == net::RequestKind::kShutdown &&
      shutdown_requested != nullptr) {
    *shutdown_requested = true;
  }
  try {
    switch (request.kind) {
      case net::RequestKind::kUser: {
        UserSessionConfig config;
        config.user = request.user;
        config.train_days = request.train_days;
        config.num_days = request.num_days;
        config.app_names = request.apps;
        add_user(std::move(config));
        return net::ok_response();
      }
      case net::RequestKind::kIngest:
        ingest(request.user, request.record);
        return net::ok_response();
      case net::RequestKind::kFinish:
        finish_user(request.user);
        return net::ok_response();
      case net::RequestKind::kGetSchedule: {
        const ScheduleResult result = schedule(request.user);
        std::ostringstream out;
        out << "transfers=" << result.outcome.transfers.size()
            << " interrupts=" << result.outcome.interrupts
            << " duty_releases=" << result.outcome.duty_releases
            << " model=" << result.model_version
            << " degraded=" << (result.degraded ? 1 : 0) << " digest="
            << std::hex << schedule_digest(result.outcome);
        return net::ok_response(out.str());
      }
      case net::RequestKind::kStats: {
        const DaemonStats s = stats();
        std::ostringstream out;
        out << "shards=" << s.num_shards << " users=" << s.totals.users
            << " trained=" << s.totals.users_trained
            << " finished=" << s.totals.users_finished
            << " events=" << s.totals.events
            << " late=" << s.totals.late_events
            << " dropped=" << s.totals.dropped_events
            << " folds=" << s.totals.days_folded
            << " refreshes=" << s.totals.refreshes
            << " alarms=" << s.totals.alarms
            << " schedules=" << s.totals.schedules
            << " queued=" << s.totals.queue_depth;
        return net::ok_response(out.str());
      }
      case net::RequestKind::kDrain:
        drain();
        return net::ok_response("drained");
      case net::RequestKind::kShutdown:
        // The reply is written by the caller before shutdown closes
        // the transport — see serve()'s connection loop.
        return net::ok_response("shutting down");
    }
  } catch (const std::exception& e) {
    return net::err_response(e.what());
  }
  return net::err_response("unhandled request");
}

void Netmasterd::serve(net::Listener& listener) {
  {
    std::lock_guard<std::mutex> lock(serve_mutex_);
    NM_REQUIRE(listener_ == nullptr, "serve() is already running");
    listener_ = &listener;
  }
  if (shutdown_.load()) listener.close();

  while (std::unique_ptr<net::Connection> accepted = listener.accept()) {
    std::shared_ptr<net::Connection> conn = std::move(accepted);
    {
      std::lock_guard<std::mutex> lock(serve_mutex_);
      if (shutdown_.load()) {
        conn->close();
        break;
      }
      connections_.push_back(conn);
      ++active_workers_;
    }
    // Detached: each worker reaps itself when its conversation ends —
    // prunes its connection entry and signals the wait below — so a
    // long-lived daemon holds state only for live connections instead
    // of accumulating finished threads until serve() exits.
    std::thread([this, conn] {
      std::string line;
      try {
        while (conn->read_line(line)) {
          bool stop = false;
          conn->write_line(handle_line(line, &stop));
          if (stop) {
            shutdown();  // closes the listener and every connection
            break;
          }
        }
      } catch (const std::exception&) {
        // A peer vanishing mid-write tears down this conversation,
        // never the daemon.
      }
      conn->close();
      {
        std::lock_guard<std::mutex> lock(serve_mutex_);
        std::erase(connections_, conn);
        --active_workers_;
        // Under the lock: once the waiter in serve() observes zero
        // workers the daemon may be destroyed, so the notify must not
        // touch the condition variable after that.
        serve_cv_.notify_all();
      }
    }).detach();
  }
  std::unique_lock<std::mutex> lock(serve_mutex_);
  serve_cv_.wait(lock, [&] { return active_workers_ == 0; });
  listener_ = nullptr;
}

}  // namespace netmaster::daemon
