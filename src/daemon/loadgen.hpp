// Deterministic load generator for netmasterd.
//
// A LoadPlan is a synthetic fleet rendered as the daemon's input: the
// per-user session configs, the time-ordered monitoring event stream,
// and the batch-path ground truth (training/eval trace slices) the
// daemon's schedules are checked against. Plans are seeded and fully
// deterministic — the same LoadConfig always produces the same events
// in the same order, so daemon tests and the throughput bench replay
// identical streams.
//
// Fleet generation matches eval::make_traces bit-for-bit: each user is
// a synth:: archetype (cycling through all eight), its full trace is
// synth::generate_trace(profile, train+eval days, seed), and the
// ground-truth slices are slice_days of that same trace — so a
// schedule computed by the daemon can be compared bitwise against
// NetMasterPolicy(training).run(TraceIndex(eval)).
//
// Event ordering: events are stable-sorted by (time, priority) with
// priority screen-off < screen-on < app < net. Ties matter — the
// store's reconstruction pairs the FIRST off after an on, so a session
// ending exactly when the next begins must stream its off first (see
// net/protocol.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "daemon/netmasterd.hpp"
#include "daemon/user_session.hpp"
#include "service/record_store.hpp"
#include "trace/trace.hpp"

namespace netmaster::daemon {

struct LoadConfig {
  int users = 8;
  int train_days = 14;  ///< must be a positive multiple of 7
  int eval_days = 7;
  std::uint64_t seed = 42;
};

/// One synthetic user: the daemon-side registration plus the batch
/// ground truth its streamed schedule must reproduce.
struct LoadUser {
  UserSessionConfig session;
  UserTrace training;  ///< slice_days(0, train_days) of the full trace
  UserTrace eval;      ///< slice_days(train_days, eval_days)
};

/// One monitoring event addressed to a user.
struct LoadEvent {
  TimeMs time = 0;
  int priority = 0;  ///< tie-break: off=0, on=1, app=2, net=3
  UserId user = 0;
  service::Record record;
};

struct LoadPlan {
  std::vector<LoadUser> users;
  std::vector<LoadEvent> events;  ///< sorted by (time, priority), stable
};

/// Builds the deterministic plan for `config`.
LoadPlan build_load_plan(const LoadConfig& config);

/// Renders one full-horizon trace as its monitoring event stream
/// (appended unsorted — run sort_events once all users are in). This
/// is the same record derivation the online executive's monitoring
/// feed performs; daemon tests use it to stream non-stationary traces
/// the archetype-cycling plan builder does not produce.
void append_trace_events(const UserTrace& full, UserId user,
                         std::vector<LoadEvent>& out);

/// Stable-sorts events by (time, priority) — the wire order.
void sort_events(std::vector<LoadEvent>& events);

/// Drives a daemon through the plan via the direct API: registers every
/// user, ingests every event in order, then finishes every user.
void replay_plan(const LoadPlan& plan, Netmasterd& daemon);

/// Renders the plan as protocol request lines (net/protocol.hpp) in the
/// same order replay_plan issues them — user registrations, the event
/// stream, then the finish markers. Feed these to a connection (or
/// handle_line) to drive a daemon over the wire.
std::vector<std::string> plan_request_lines(const LoadPlan& plan);

}  // namespace netmaster::daemon
