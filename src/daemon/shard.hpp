// One daemon shard: a worker thread owning the UserSessions of every
// user with hash(user) % num_shards == index.
//
// All mutation flows through a bounded MPSC command queue: producers
// (connection threads, the direct API) block when the queue is full —
// that blocking IS the daemon's backpressure — and the worker applies
// commands strictly in arrival order. Per-user state is therefore
// touched by exactly one thread, so the ingest→fold→mine hot path
// takes no locks beyond the queue's.
//
// FIFO ordering makes drain trivial: a Drain command's promise
// resolves only after everything enqueued before it was applied.
// Synchronous requests (add-user, schedule, stats) ride the same
// queue with a promise/future round trip, so they linearize with the
// event stream — a schedule request observes every event ingested
// before it on the same connection.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <variant>

#include "daemon/user_session.hpp"

namespace netmaster::daemon {

/// Snapshot of one shard's aggregate state (summed into DaemonStats).
struct ShardStats {
  std::uint64_t users = 0;
  std::uint64_t users_trained = 0;
  std::uint64_t users_finished = 0;
  std::uint64_t events = 0;
  std::uint64_t late_events = 0;
  std::uint64_t dropped_events = 0;  ///< for unknown/failed users
  std::uint64_t days_folded = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t alarms = 0;
  std::uint64_t schedules = 0;  ///< schedule requests served
  std::size_t queue_depth = 0;  ///< commands waiting at snapshot time

  ShardStats& operator+=(const ShardStats& other);
};

class Shard {
 public:
  Shard(int index, std::size_t queue_capacity,
        policy::NetMasterConfig policy_config,
        service::AdaptationConfig adapt);
  ~Shard();

  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// Registers a user (fails on duplicates). Synchronous.
  void add_user(UserSessionConfig config);

  /// Enqueues one record for `user`; blocks while the queue is full.
  /// Unknown users are counted as dropped when the worker gets there.
  void ingest(UserId user, const service::Record& record);

  /// Enqueues end-of-stream for `user`.
  void finish(UserId user);

  /// Synchronous schedule request (linearized with prior events).
  ScheduleResult schedule(UserId user);

  /// Synchronous stats snapshot.
  ShardStats stats();

  /// Resolves when every command enqueued before it has been applied.
  std::future<void> drain();

  /// Drains and joins the worker; further commands throw. Idempotent.
  void stop();

 private:
  struct AddUserCmd {
    UserSessionConfig config;
    std::promise<void> done;
  };
  struct IngestCmd {
    UserId user = 0;
    service::Record record;
  };
  struct FinishCmd {
    UserId user = 0;
  };
  struct ScheduleCmd {
    UserId user = 0;
    std::promise<ScheduleResult> result;
  };
  struct StatsCmd {
    std::promise<ShardStats> result;
  };
  struct DrainCmd {
    std::promise<void> done;
  };
  using Command = std::variant<IngestCmd, AddUserCmd, FinishCmd,
                               ScheduleCmd, StatsCmd, DrainCmd>;

  void post(Command command);
  void run();
  void apply(Command& command);
  ShardStats snapshot_locked_free() const;

  const int index_;
  const std::size_t capacity_;
  policy::NetMasterConfig policy_config_;
  service::AdaptationConfig adapt_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Command> queue_;
  bool stopping_ = false;

  /// Worker-thread-only state (no lock needed).
  std::unordered_map<UserId, std::unique_ptr<UserSession>> sessions_;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t schedules_served_ = 0;

  std::thread worker_;
};

}  // namespace netmaster::daemon
