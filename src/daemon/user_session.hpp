// Per-user streaming state of netmasterd.
//
// A UserSession turns one user's ingested monitoring records into the
// same artifacts the batch pipeline computes, incrementally:
//
//   * during the training window, each completed day is folded into an
//     IncrementalHabitMiner (decay 0) through a 2-day reconstruction
//     window — O(events of 2 days) per fold, never a whole-history
//     rebuild. When the last training day folds, the session snapshots
//     the miner into a HabitModel, detects SpecialApps from the (one-
//     time) reconstructed training window, and builds the serving
//     NetMasterPolicy through the model-injection constructor. At
//     decay 0 on clean streams this policy is bit-for-bit the one
//     NetMasterPolicy(training_trace, config) mines — the daemon's
//     batch-equivalence anchor (daemon_test, bench_service_throughput).
//
//   * during the evaluation window, completed days feed a DriftDetector
//     exactly as the online executive (service/online_sim.cpp) does at
//     its midnight tick; a standing alarm triggers windowed re-mining
//     from the store with the same changepoint clamp, confidence ramp,
//     robustness gate and exponential backoff. Adopted models hot-swap
//     the serving policy (bumping model_version); rejected ones back
//     off.
//
//   * schedule() reconstructs the evaluation window seen so far,
//     indexes it and runs the serving policy — cached until new eval
//     events or a model swap invalidate it.
//
// Day folds assume screen sessions span at most one midnight (true of
// synthesized and sanitized traces): the 2-day window always contains
// a day's governing screen edges. Records arriving for already-folded
// days are appended to the store (later reconstructions see them) but
// counted as late_events and never re-folded — folds are
// deterministic, at-most-once.
//
// Not thread-safe: a session is owned by exactly one shard worker
// (daemon/shard.hpp), which serializes all access.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mining/drift.hpp"
#include "mining/incremental.hpp"
#include "mining/special_apps.hpp"
#include "policy/netmaster.hpp"
#include "service/online_sim.hpp"
#include "service/record_store.hpp"
#include "sim/outcome.hpp"
#include "trace/trace.hpp"

namespace netmaster::daemon {

struct UserSessionConfig {
  UserId user = 0;
  /// Days of the training window (must be a multiple of 7 so the
  /// weekday/weekend phase survives the train/eval split, exactly as
  /// eval::ExperimentConfig requires).
  int train_days = 14;
  /// Total horizon; days [train_days, num_days) are the evaluation
  /// window schedules are computed over.
  int num_days = 21;
  std::vector<std::string> app_names;
};

struct UserSessionStats {
  std::uint64_t events = 0;
  std::uint64_t late_events = 0;   ///< already-folded day or out of horizon
  std::uint64_t days_folded = 0;
  std::uint64_t refresh_attempts = 0;
  std::uint64_t refreshes = 0;     ///< re-mined models actually adopted
  std::uint64_t alarms = 0;        ///< distinct drift alarms
  bool trained = false;
  bool finished = false;
  /// 0 before training completes; 1 after; +1 per adopted refresh.
  int model_version = 0;
  double drift_score = 0.0;        ///< detector score after the last fold
};

/// One computed schedule (the daemon's answer to get-schedule).
struct ScheduleResult {
  sim::PolicyOutcome outcome;
  int model_version = 0;
  bool degraded = false;
  std::string degraded_reason;
};

class UserSession {
 public:
  UserSession(UserSessionConfig config,
              policy::NetMasterConfig policy_config,
              service::AdaptationConfig adapt);

  const UserSessionConfig& config() const { return config_; }
  int eval_days() const { return config_.num_days - config_.train_days; }

  /// Ingests one monitoring record. Crossing a day boundary folds the
  /// completed day(s); crossing the training boundary builds the model.
  void ingest(const service::Record& record);

  /// Ends the event stream: folds every remaining day (empty days
  /// contribute zero-days, as in the batch miner) through the horizon.
  void finish();

  /// Computes (or returns the cached) schedule over the evaluation
  /// window from the records seen so far. Requires the training window
  /// to be complete (ingest crossed it, or finish() was called).
  const ScheduleResult& schedule();

  const UserSessionStats& stats() const { return stats_; }

 private:
  void fold_through(int day);
  void fold_day(int day);
  mining::DayContribution summarize_window(int day) const;
  void complete_training();
  void attempt_refresh(int eval_day);
  /// Training-window records (clipped at the boundary like
  /// UserTrace::slice_days clips).
  std::vector<service::Record> training_records() const;
  /// Evaluation records of relative days [0, horizon_days), shifted to
  /// the evaluation epoch, with the synthetic screen-on edge when a
  /// session straddled the training boundary.
  std::vector<service::Record> eval_records(int horizon_days) const;

  UserSessionConfig config_;
  policy::NetMasterConfig policy_config_;
  service::AdaptationConfig adapt_;
  TimeMs train_end_ = 0;

  service::RecordStore store_;  ///< every ingested record (the §V DB)
  /// Records of days [current_day_ - 1, current_day_] — the fold
  /// window. Pruned at each fold; the reason folds stay O(2 days).
  std::vector<service::Record> window_records_;
  int current_day_ = 0;

  mining::IncrementalHabitMiner miner_;  ///< decay 0: batch-equivalent
  mining::DriftDetector detector_;
  mining::SpecialApps special_;
  std::unique_ptr<policy::NetMasterPolicy> policy_;

  TimeMs screen_open_since_ = -1;  ///< ingest-side session pairing state
  bool eval_screen_open_ = false;  ///< session straddled the boundary
  std::uint64_t eval_events_ = 0;

  bool alarm_pending_ = false;
  int next_refresh_day_ = 0;
  int refresh_gap_ = 0;

  ScheduleResult cached_;
  bool cache_valid_ = false;
  std::uint64_t cache_events_ = 0;
  int cache_version_ = 0;

  UserSessionStats stats_;
};

}  // namespace netmaster::daemon
