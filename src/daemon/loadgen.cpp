#include "daemon/loadgen.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "net/protocol.hpp"
#include "synth/generator.hpp"
#include "synth/presets.hpp"

namespace netmaster::daemon {

namespace {

constexpr int kPriorityScreenOff = 0;
constexpr int kPriorityScreenOn = 1;
constexpr int kPriorityApp = 2;
constexpr int kPriorityNet = 3;

}  // namespace

void append_trace_events(const UserTrace& full, UserId user,
                         std::vector<LoadEvent>& out) {
  // The same record derivation the online executive's monitoring feed
  // uses (service/online_sim.cpp record_completed_day), flattened over
  // the whole horizon.
  for (const ScreenSession& s : full.sessions) {
    service::Record on;
    on.kind = service::RecordKind::kScreenOn;
    on.time = s.begin;
    out.push_back({s.begin, kPriorityScreenOn, user, on});
    service::Record off;
    off.kind = service::RecordKind::kScreenOff;
    off.time = s.end;
    out.push_back({s.end, kPriorityScreenOff, user, off});
  }
  for (const AppUsage& u : full.usages) {
    service::Record r;
    r.kind = service::RecordKind::kAppForeground;
    r.time = u.time;
    r.app = u.app;
    r.duration = u.duration;
    out.push_back({u.time, kPriorityApp, user, r});
  }
  for (const NetworkActivity& a : full.activities) {
    service::Record r;
    r.kind = service::RecordKind::kNetworkActivity;
    r.time = a.start;
    r.app = a.app;
    r.bytes_down = a.bytes_down;
    r.bytes_up = a.bytes_up;
    r.duration = a.duration;
    r.user_initiated = a.user_initiated;
    r.deferrable = a.deferrable;
    out.push_back({a.start, kPriorityNet, user, r});
  }
}

void sort_events(std::vector<LoadEvent>& events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const LoadEvent& a, const LoadEvent& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.priority < b.priority;
                   });
}

LoadPlan build_load_plan(const LoadConfig& config) {
  NM_REQUIRE(config.users > 0, "users must be positive");
  NM_REQUIRE(config.train_days > 0 && config.train_days % 7 == 0,
             "train_days must be a positive multiple of 7");
  NM_REQUIRE(config.eval_days > 0, "eval_days must be positive");

  constexpr synth::Archetype kArchetypes[] = {
      synth::Archetype::kOfficeWorker,   synth::Archetype::kStudent,
      synth::Archetype::kNightOwl,       synth::Archetype::kCommuter,
      synth::Archetype::kRetiree,        synth::Archetype::kHeavyMessenger,
      synth::Archetype::kWeekendWarrior, synth::Archetype::kLightUser,
  };
  constexpr int kNumArchetypes =
      static_cast<int>(sizeof(kArchetypes) / sizeof(kArchetypes[0]));

  const int total = config.train_days + config.eval_days;
  LoadPlan plan;
  plan.users.reserve(static_cast<std::size_t>(config.users));
  for (int u = 0; u < config.users; ++u) {
    const synth::UserProfile profile =
        synth::make_user(kArchetypes[u % kNumArchetypes], u);
    // Exactly eval::make_traces: one full-horizon generation, then the
    // training/eval split by slice_days — the daemon's ground truth.
    const UserTrace full =
        synth::generate_trace(profile, total, config.seed);
    LoadUser user;
    user.session.user = u;
    user.session.train_days = config.train_days;
    user.session.num_days = total;
    user.session.app_names = full.app_names;
    user.training = full.slice_days(0, config.train_days);
    user.eval = full.slice_days(config.train_days, config.eval_days);
    append_trace_events(full, u, plan.events);
    plan.users.push_back(std::move(user));
  }

  sort_events(plan.events);
  return plan;
}

void replay_plan(const LoadPlan& plan, Netmasterd& daemon) {
  for (const LoadUser& user : plan.users) daemon.add_user(user.session);
  for (const LoadEvent& event : plan.events) {
    daemon.ingest(event.user, event.record);
  }
  for (const LoadUser& user : plan.users) {
    daemon.finish_user(user.session.user);
  }
}

std::vector<std::string> plan_request_lines(const LoadPlan& plan) {
  std::vector<std::string> lines;
  lines.reserve(plan.users.size() * 2 + plan.events.size());
  for (const LoadUser& user : plan.users) {
    net::Request req;
    req.kind = net::RequestKind::kUser;
    req.user = user.session.user;
    req.train_days = user.session.train_days;
    req.num_days = user.session.num_days;
    req.apps = user.session.app_names;
    lines.push_back(net::format_request(req));
  }
  for (const LoadEvent& event : plan.events) {
    net::Request req;
    req.kind = net::RequestKind::kIngest;
    req.user = event.user;
    req.record = event.record;
    lines.push_back(net::format_request(req));
  }
  for (const LoadUser& user : plan.users) {
    net::Request req;
    req.kind = net::RequestKind::kFinish;
    req.user = user.session.user;
    lines.push_back(net::format_request(req));
  }
  return lines;
}

}  // namespace netmaster::daemon
