#include "fault/injector.hpp"

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace netmaster::fault {

namespace {

/// Removes elements with probability `rate`, returning the drop count.
template <typename T>
std::size_t drop_elements(std::vector<T>& v, double rate, Rng& rng) {
  std::size_t dropped = 0;
  std::vector<T> kept;
  kept.reserve(v.size());
  for (const T& e : v) {
    if (rng.bernoulli(rate)) {
      ++dropped;
    } else {
      kept.push_back(e);
    }
  }
  v = std::move(kept);
  return dropped;
}

/// Duplicates elements in place with probability `rate` (the copy lands
/// adjacent to the original, mimicking a twice-delivered record).
template <typename T>
std::size_t duplicate_elements(std::vector<T>& v, double rate, Rng& rng) {
  std::size_t duplicated = 0;
  std::vector<T> out;
  out.reserve(v.size());
  for (const T& e : v) {
    out.push_back(e);
    if (rng.bernoulli(rate)) {
      out.push_back(e);
      ++duplicated;
    }
  }
  v = std::move(out);
  return duplicated;
}

std::size_t apply_drop(UserTrace& t, double rate, Rng& rng) {
  std::size_t n = 0;
  n += drop_elements(t.sessions, rate, rng);
  n += drop_elements(t.usages, rate, rng);
  n += drop_elements(t.activities, rate, rng);
  return n;
}

std::size_t apply_duplicate(UserTrace& t, double rate, Rng& rng) {
  std::size_t n = 0;
  n += duplicate_elements(t.sessions, rate, rng);  // overlap: invalid
  n += duplicate_elements(t.usages, rate, rng);
  n += duplicate_elements(t.activities, rate, rng);
  return n;
}

std::size_t apply_reorder(UserTrace& t, double rate, Rng& rng) {
  std::size_t n = 0;
  for (std::size_t i = 0; i + 1 < t.usages.size(); i += 2) {
    if (rng.bernoulli(rate)) {
      std::swap(t.usages[i].time, t.usages[i + 1].time);
      ++n;
    }
  }
  for (std::size_t i = 0; i + 1 < t.activities.size(); i += 2) {
    if (rng.bernoulli(rate)) {
      std::swap(t.activities[i].start, t.activities[i + 1].start);
      ++n;
    }
  }
  return n;
}

std::size_t apply_field_corruption(UserTrace& t, double rate, Rng& rng) {
  std::size_t n = 0;
  const auto bad_app = static_cast<AppId>(t.app_names.size() + 3);
  for (NetworkActivity& a : t.activities) {
    if (!rng.bernoulli(rate)) continue;
    ++n;
    switch (rng.uniform_int(0, 3)) {
      case 0:
        a.bytes_down = -(a.bytes_down + 1);
        break;
      case 1:
        a.duration = -(a.duration + kMsPerSecond);
        break;
      case 2:
        a.app = rng.bernoulli(0.5) ? bad_app : AppId{-7};
        break;
      default:
        a.start += t.trace_end();  // beyond the horizon
        break;
    }
  }
  for (AppUsage& u : t.usages) {
    if (!rng.bernoulli(rate)) continue;
    ++n;
    u.app = rng.bernoulli(0.5) ? bad_app : AppId{-3};
  }
  return n;
}

std::size_t apply_clock_skew(UserTrace& t, double rate, Rng& rng) {
  // Everything after a random pivot shifts by a signed offset whose
  // magnitude grows with the rate — negative offsets create
  // non-monotonic seams, large ones push events outside the horizon.
  const TimeMs horizon = t.trace_end();
  const TimeMs pivot =
      horizon > 0 ? rng.uniform_int(0, horizon - 1) : TimeMs{0};
  const auto magnitude =
      static_cast<TimeMs>(rate * 4.0 * static_cast<double>(kMsPerHour));
  const TimeMs offset = rng.bernoulli(0.5) ? magnitude : -magnitude;
  if (offset == 0) return 0;
  std::size_t n = 0;
  for (ScreenSession& s : t.sessions) {
    if (s.begin >= pivot) {
      s.begin += offset;
      s.end += offset;
      ++n;
    }
  }
  for (AppUsage& u : t.usages) {
    if (u.time >= pivot) {
      u.time += offset;
      ++n;
    }
  }
  for (NetworkActivity& a : t.activities) {
    if (a.start >= pivot) {
      a.start += offset;
      ++n;
    }
  }
  return n;
}

std::size_t apply_counter_reset(UserTrace& t, double rate, Rng& rng) {
  // A byte counter that wraps mid-sample yields a negative delta; the
  // monitoring layer records it verbatim.
  std::size_t n = 0;
  for (NetworkActivity& a : t.activities) {
    if (!rng.bernoulli(rate)) continue;
    a.bytes_down = a.bytes_down > 0 ? -a.bytes_down : -1;
    a.bytes_up = a.bytes_up > 0 ? -a.bytes_up : -1;
    ++n;
  }
  return n;
}

std::size_t apply_missing_screen_edge(UserTrace& t, double rate, Rng& rng) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < t.sessions.size(); ++i) {
    if (!rng.bernoulli(rate)) continue;
    ++n;
    ScreenSession& s = t.sessions[i];
    if (rng.bernoulli(0.5)) {
      // Missing OFF edge: the session runs on until (past) the next
      // session's start, producing an overlap.
      s.end = i + 1 < t.sessions.size()
                  ? t.sessions[i + 1].begin + kMsPerSecond
                  : s.end + kMsPerHour;
    } else {
      // Missing ON edge: only the off event survives — an empty
      // (invalid) session stub.
      s.end = s.begin;
    }
  }
  return n;
}

std::size_t apply_truncate_days(UserTrace& t, double rate) {
  // Cold start: the trailing `rate` fraction of history days never made
  // it into the store. Always leaves at least one day.
  const int keep = std::max(
      1, t.num_days - static_cast<int>(rate * t.num_days + 0.5));
  if (keep >= t.num_days) return 0;
  const TimeMs cut = day_start(keep);
  std::size_t n = 0;

  std::vector<ScreenSession> sessions;
  for (ScreenSession s : t.sessions) {
    if (s.begin >= cut) {
      ++n;
      continue;
    }
    if (s.end > cut) s.end = cut;
    sessions.push_back(s);
  }
  t.sessions = std::move(sessions);

  auto erase_after = [&](auto& v, auto time_of_event) {
    const std::size_t before = v.size();
    v.erase(std::remove_if(v.begin(), v.end(),
                           [&](const auto& e) {
                             return time_of_event(e) >= cut;
                           }),
            v.end());
    return before - v.size();
  };
  n += erase_after(t.usages, [](const AppUsage& u) { return u.time; });
  n += erase_after(t.activities,
                   [](const NetworkActivity& a) { return a.start; });
  for (NetworkActivity& a : t.activities) {
    a.duration = std::min<DurationMs>(a.duration, cut - a.start);
  }
  t.num_days = keep;
  return n;
}

}  // namespace

InjectionResult inject_faults(const UserTrace& clean,
                              const FaultPlan& plan) {
  InjectionResult out{clean, {}};
  for (std::size_t i = 0; i < plan.specs.size(); ++i) {
    const FaultSpec& spec = plan.specs[i];
    NM_REQUIRE(spec.rate >= 0.0 && spec.rate <= 1.0,
               "fault rate must lie in [0, 1]");
    const auto kind_index = static_cast<std::uint64_t>(spec.kind);
    Rng rng(derive_seed(plan.seed, (i << 8) | kind_index));
    std::size_t n = 0;
    switch (spec.kind) {
      case FaultKind::kDropRecord:
        n = apply_drop(out.trace, spec.rate, rng);
        break;
      case FaultKind::kDuplicateRecord:
        n = apply_duplicate(out.trace, spec.rate, rng);
        break;
      case FaultKind::kReorderRecords:
        n = apply_reorder(out.trace, spec.rate, rng);
        break;
      case FaultKind::kFieldCorruption:
        n = apply_field_corruption(out.trace, spec.rate, rng);
        break;
      case FaultKind::kClockSkew:
        n = apply_clock_skew(out.trace, spec.rate, rng);
        break;
      case FaultKind::kCounterReset:
        n = apply_counter_reset(out.trace, spec.rate, rng);
        break;
      case FaultKind::kMissingScreenEdge:
        n = apply_missing_screen_edge(out.trace, spec.rate, rng);
        break;
      case FaultKind::kTruncateDays:
        n = apply_truncate_days(out.trace, spec.rate);
        break;
    }
    out.log.injected[static_cast<std::size_t>(spec.kind)] += n;
  }
  return out;
}

}  // namespace netmaster::fault
