#include "fault/sanitize.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace netmaster::fault {

namespace {

bool valid_app(AppId app, std::size_t num_apps) {
  return app >= 0 && static_cast<std::size_t>(app) < num_apps;
}

}  // namespace

SanitizeResult sanitize_trace(const UserTrace& raw) {
  SanitizeResult out;
  UserTrace& t = out.trace;
  SanitizeReport& rep = out.report;

  t.user = raw.user;
  t.num_days = raw.num_days;
  if (t.num_days < 1) {
    t.num_days = 1;
    rep.day_count_repaired = true;
  }
  t.app_names = raw.app_names;
  const TimeMs end = t.trace_end();
  const std::size_t num_apps = t.app_names.size();
  rep.total_events =
      raw.sessions.size() + raw.usages.size() + raw.activities.size();

  // ---- App usages: drop unknown apps and out-of-horizon events,
  // clamp negative durations, restore time order. ----
  t.usages.reserve(raw.usages.size());
  for (AppUsage u : raw.usages) {
    if (!valid_app(u.app, num_apps) || u.time < 0 || u.time >= end) {
      ++rep.dropped_events;
      continue;
    }
    if (u.duration < 0) {
      u.duration = 0;
      ++rep.clamped_events;
    }
    t.usages.push_back(u);
  }
  if (!std::is_sorted(t.usages.begin(), t.usages.end(),
                      [](const AppUsage& a, const AppUsage& b) {
                        return a.time < b.time;
                      })) {
    std::stable_sort(t.usages.begin(), t.usages.end(),
                     [](const AppUsage& a, const AppUsage& b) {
                       return a.time < b.time;
                     });
    ++rep.resorted_streams;
  }

  // ---- Network activities: drop unknown apps and out-of-horizon
  // starts; clamp negative byte deltas (counter resets) to zero,
  // negative durations to zero, and clip transfers at the horizon. ----
  t.activities.reserve(raw.activities.size());
  for (NetworkActivity a : raw.activities) {
    if (!valid_app(a.app, num_apps) || a.start < 0 || a.start >= end) {
      ++rep.dropped_events;
      continue;
    }
    bool clamped = false;
    if (a.duration < 0) {
      a.duration = 0;
      clamped = true;
    }
    if (a.start + a.duration > end) {
      a.duration = end - a.start;
      clamped = true;
    }
    if (a.bytes_down < 0) {
      a.bytes_down = 0;
      clamped = true;
    }
    if (a.bytes_up < 0) {
      a.bytes_up = 0;
      clamped = true;
    }
    if (clamped) ++rep.clamped_events;
    t.activities.push_back(a);
  }
  if (!std::is_sorted(t.activities.begin(), t.activities.end(),
                      [](const NetworkActivity& a,
                         const NetworkActivity& b) {
                        return a.start < b.start;
                      })) {
    std::stable_sort(t.activities.begin(), t.activities.end(),
                     [](const NetworkActivity& a,
                        const NetworkActivity& b) {
                       return a.start < b.start;
                     });
    ++rep.resorted_streams;
  }

  // ---- Screen sessions: clip to the horizon, drop empty/inverted
  // stubs (missing ON edges), restore order, merge overlaps (missing
  // OFF edges). Touching sessions (begin == prev end) stay distinct —
  // they are valid. ----
  std::vector<ScreenSession> sessions;
  sessions.reserve(raw.sessions.size());
  for (ScreenSession s : raw.sessions) {
    const TimeMs begin = std::clamp<TimeMs>(s.begin, 0, end);
    const TimeMs finish = std::clamp<TimeMs>(s.end, 0, end);
    if (begin >= finish) {
      ++rep.dropped_events;
      continue;
    }
    if (begin != s.begin || finish != s.end) ++rep.clamped_events;
    sessions.push_back({begin, finish});
  }
  if (!std::is_sorted(sessions.begin(), sessions.end(),
                      [](const ScreenSession& a, const ScreenSession& b) {
                        return a.begin < b.begin;
                      })) {
    std::stable_sort(sessions.begin(), sessions.end(),
                     [](const ScreenSession& a, const ScreenSession& b) {
                       return a.begin < b.begin;
                     });
    ++rep.resorted_streams;
  }
  for (const ScreenSession& s : sessions) {
    if (!t.sessions.empty() && s.begin < t.sessions.back().end) {
      t.sessions.back().end = std::max(t.sessions.back().end, s.end);
      ++rep.merged_sessions;
    } else {
      t.sessions.push_back(s);
    }
  }

  // The whole point: the result is valid by construction (validate
  // throws if this ever regresses).
  out.trace.validate();

  // Degradation telemetry: the repair ledger, fleet-wide.
  struct SanitizeMetrics {
    obs::Counter& calls;
    obs::Counter& dropped;
    obs::Counter& clamped;
    obs::Counter& slots_repaired;
    obs::Counter& resorted;
  };
  static SanitizeMetrics metrics{
      obs::Registry::global().counter("fault.sanitize.calls"),
      obs::Registry::global().counter("fault.sanitize.dropped_events"),
      obs::Registry::global().counter("fault.sanitize.clamped_events"),
      obs::Registry::global().counter("fault.sanitize.slots_repaired"),
      obs::Registry::global().counter("fault.sanitize.resorted_streams"),
  };
  metrics.calls.add(1);
  metrics.dropped.add(rep.dropped_events);
  metrics.clamped.add(rep.clamped_events);
  metrics.slots_repaired.add(rep.merged_sessions);
  metrics.resorted.add(rep.resorted_streams);
  return out;
}

}  // namespace netmaster::fault
