// Deterministic fault injection at the trace boundary.
//
// `inject_faults` perturbs a clean UserTrace according to a FaultPlan.
// The output is deliberately allowed to be *invalid* — unsorted events,
// overlapping sessions, negative byte counts, timestamps outside the
// horizon — because that is exactly what downstream consumers must
// survive. Feed the result through `fault::sanitize_trace` to obtain
// the valid-but-degraded trace the graceful-degradation path consumes,
// or hand it to a tolerant consumer directly.
//
// Injection is a pure function of (clean trace, plan): per-spec RNG
// streams are derived from the plan seed, so the same plan always
// produces byte-identical corruption regardless of spec evaluation
// order elsewhere.
#pragma once

#include "fault/fault_plan.hpp"
#include "trace/trace.hpp"

namespace netmaster::fault {

/// The perturbed trace plus the injection ledger.
struct InjectionResult {
  UserTrace trace;  ///< possibly invalid — see header comment
  FaultLog log;
};

/// Applies `plan` to a copy of `clean`. Throws netmaster::Error when a
/// spec rate lies outside [0, 1]; never throws for any trace content.
InjectionResult inject_faults(const UserTrace& clean,
                              const FaultPlan& plan);

}  // namespace netmaster::fault
