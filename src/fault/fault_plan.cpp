#include "fault/fault_plan.hpp"

namespace netmaster::fault {

const char* kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDropRecord:
      return "drop-record";
    case FaultKind::kDuplicateRecord:
      return "duplicate-record";
    case FaultKind::kReorderRecords:
      return "reorder-records";
    case FaultKind::kFieldCorruption:
      return "field-corruption";
    case FaultKind::kClockSkew:
      return "clock-skew";
    case FaultKind::kCounterReset:
      return "counter-reset";
    case FaultKind::kMissingScreenEdge:
      return "missing-screen-edge";
    case FaultKind::kTruncateDays:
      return "truncate-days";
  }
  return "unknown";
}

const std::array<FaultKind, kNumFaultKinds>& all_fault_kinds() {
  static const std::array<FaultKind, kNumFaultKinds> kinds = {
      FaultKind::kDropRecord,        FaultKind::kDuplicateRecord,
      FaultKind::kReorderRecords,    FaultKind::kFieldCorruption,
      FaultKind::kClockSkew,         FaultKind::kCounterReset,
      FaultKind::kMissingScreenEdge, FaultKind::kTruncateDays,
  };
  return kinds;
}

}  // namespace netmaster::fault
