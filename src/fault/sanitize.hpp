// Graceful repair of corrupted traces — the degradation entry point.
//
// `sanitize_trace` accepts *any* UserTrace content (including the
// output of `fault::inject_faults` and raw RecordStore reconstructions
// from a faulty monitoring layer) and returns a trace that is
// guaranteed to satisfy UserTrace::validate(), plus a report of every
// repair made. Unrecoverable records (unknown app ids, timestamps
// outside the horizon) are dropped; recoverable ones are clamped
// (negative durations/bytes to zero, transfers clipped at the
// horizon); out-of-order streams are re-sorted; overlapping screen
// sessions are merged. A valid trace passes through bit-identically,
// so the clean path pays nothing but the copy.
//
// The report's `quality()` score feeds the mining layer's confidence
// model: heavily-repaired history lowers model confidence, which in
// turn trips NetMasterPolicy's safe fallback schedule.
#pragma once

#include <cstddef>

#include "trace/trace.hpp"

namespace netmaster::fault {

/// Ledger of repairs performed by sanitize_trace.
struct SanitizeReport {
  std::size_t total_events = 0;     ///< sessions + usages + activities in
  std::size_t dropped_events = 0;   ///< unrecoverable records removed
  std::size_t clamped_events = 0;   ///< fields clipped into valid range
  std::size_t merged_sessions = 0;  ///< overlapping sessions coalesced
  std::size_t resorted_streams = 0; ///< event streams re-sorted (0–3)
  bool day_count_repaired = false;  ///< num_days was < 1

  /// True when the input was already valid (no repair of any kind).
  bool clean() const {
    return dropped_events == 0 && clamped_events == 0 &&
           merged_sessions == 0 && resorted_streams == 0 &&
           !day_count_repaired;
  }

  /// Data-quality score in [0, 1]: the fraction of events that
  /// survived, with clamped events half-weighted. 1.0 for clean input.
  double quality() const {
    if (total_events == 0) return 1.0;
    const double penalty = static_cast<double>(dropped_events) +
                           0.5 * static_cast<double>(clamped_events);
    const double q =
        1.0 - penalty / static_cast<double>(total_events);
    return q < 0.0 ? 0.0 : q;
  }
};

/// A repaired trace plus its repair ledger.
struct SanitizeResult {
  UserTrace trace;  ///< always satisfies UserTrace::validate()
  SanitizeReport report;
};

/// Repairs `raw` as described above. Never throws on trace content.
SanitizeResult sanitize_trace(const UserTrace& raw);

}  // namespace netmaster::fault
