// Declarative fault plans for chaos runs (the robustness spine).
//
// A FaultPlan names the perturbations to apply to a clean trace at the
// record/trace boundary — the corruption classes a production
// monitoring pipeline actually sees: lost and duplicated records,
// out-of-order delivery, scrambled fields, clock skew, byte-counter
// resets, unpaired screen edges, and truncated history. Every plan is
// driven by one explicit seed, so a chaos run is exactly as
// reproducible as any other experiment in this library.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace netmaster::fault {

/// The fault taxonomy. Each kind perturbs one failure surface of the
/// monitoring -> mining -> policy pipeline.
enum class FaultKind {
  kDropRecord = 0,     ///< monitoring records lost before the store
  kDuplicateRecord,    ///< records delivered twice
  kReorderRecords,     ///< neighbouring events swap timestamps
  kFieldCorruption,    ///< numeric fields scrambled (app ids, bytes, …)
  kClockSkew,          ///< a segment of the trace shifts in time
  kCounterReset,       ///< byte counters wrap: negative deltas
  kMissingScreenEdge,  ///< screen on/off edges lost (unpaired sessions)
  kTruncateDays,       ///< trailing history days missing (cold start)
};

inline constexpr std::size_t kNumFaultKinds = 8;

/// Human-readable name of a fault kind ("drop-record", …).
const char* kind_name(FaultKind kind);

/// All fault kinds, in enum order (for sweeps).
const std::array<FaultKind, kNumFaultKinds>& all_fault_kinds();

/// One perturbation: a kind plus its intensity. `rate` is the fraction
/// of candidate records affected (for kTruncateDays: the fraction of
/// trailing days removed). Must lie in [0, 1].
struct FaultSpec {
  FaultKind kind = FaultKind::kDropRecord;
  double rate = 0.0;
};

/// A reproducible chaos scenario: a seed plus an ordered list of
/// perturbations, applied in order by the injector.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> specs;

  /// Builder convenience: plan.with(kClockSkew, 0.1).with(kDropRecord, 0.05)
  FaultPlan& with(FaultKind kind, double rate) {
    specs.push_back({kind, rate});
    return *this;
  }
};

/// What the injector actually did, per kind — chaos tests assert on
/// these counts instead of guessing from the perturbed trace.
struct FaultLog {
  std::array<std::size_t, kNumFaultKinds> injected{};

  std::size_t count(FaultKind kind) const {
    return injected[static_cast<std::size_t>(kind)];
  }
  std::size_t total() const {
    std::size_t sum = 0;
    for (const std::size_t n : injected) sum += n;
    return sum;
  }
};

}  // namespace netmaster::fault
